//! heimdall-service: a concurrent multi-tenant session broker for twin
//! networks.
//!
//! The paper's workflow — ticket → sliced twin → mediated session →
//! enforced commit — is single-technician. An MSP is not: one production
//! network is worked on by many technicians at once. This crate hosts
//! that workflow as a service:
//!
//! - [`proto`] — length-prefixed JSON frames over any `Read + Write`
//!   (TCP in production, an in-process [`proto::duplex`] pipe in tests);
//! - [`registry`] — sharded, idle-TTL-evicted store of live sessions;
//! - [`pool`] — bounded worker pool (backpressure) and per-technician
//!   token-bucket rate limiting;
//! - [`broker`] — intake, privilege memoization, and guarded optimistic
//!   commits into the one shared production network. Intake runs the
//!   `heimdall-analyze` static analyzer over every derived spec
//!   (memoized with the derivation) and refuses opens above a
//!   configurable severity; reports are served over the wire via
//!   [`proto::Request::AnalyzeQuery`];
//! - [`stats`] — lock-free counters and latency histograms.
//!
//! Every session roots a `heimdall-telemetry` trace: open/exec/finish
//! spans (plus the enforcer's verify/schedule/commit children) land in
//! the broker's span ring, per-stage metrics are served as Prometheus
//! text via [`proto::Request::Telemetry`], and span trees are joinable
//! with audit records through [`proto::Request::TraceQuery`].
//!
//! On top of that instantaneous view sits `heimdall-obs`: the broker's
//! [`broker::Broker::scrape_once`] loop feeds a tiered time-series store
//! (queried via [`proto::Request::TimeQuery`]), an SLO engine fires
//! burn-rate alerts carrying exemplar trace tags
//! ([`proto::Request::AlertQuery`]), and stored span trees are
//! attributed per stage via [`proto::Request::CriticalPath`]. Device
//! counters are scraped *through* each session's reference monitor —
//! monitoring reads obey least privilege too.
//!
//! Durability comes from `heimdall-store`: a broker opened through
//! [`broker::Broker::open_durable`] journals session opens, privilege
//! derivations, commits, finishes, and every audit entry into a
//! crash-safe WAL ([`journal`] defines the event vocabulary), batches
//! fsyncs via group commit, and checkpoints full-state snapshots so
//! recovery is snapshot + bounded replay. A restarted broker gets back
//! its production network at the exact committed epoch, its re-verified
//! audit chain, its counters and obs lifetime totals — and evicts the
//! sessions that died with the old process, on the record.

pub mod broker;
pub mod journal;
pub mod pool;
pub mod proto;
pub mod registry;
pub mod stats;

pub use broker::{
    Broker, BrokerConfig, BrokerError, FinishReport, SessionService, MAX_ANALYZE_PREDICATES,
};
pub use journal::{BrokerSnapshot, JournalEvent, PersistedCounters};
pub use pool::{RateLimiter, SubmitError, WorkerPool};
pub use proto::{
    duplex, read_frame, write_frame, AuditEntryView, ErrorKind, FrameError, PipeEnd, Request,
    Response, SessionId, MAX_FRAME,
};
pub use registry::{SessionEntry, SessionRegistry};
pub use stats::{FleetMetrics, LatencyHistogram, ServiceStats, StatsSnapshot};

/// Compile-time thread-safety proof for everything the broker shares
/// across worker threads. If a future change smuggles an `Rc` or raw
/// pointer into these types, this module stops compiling — the broker's
/// soundness depends on these bounds, not just convention.
mod thread_safety {
    #[allow(dead_code)]
    fn assert_send<T: Send>() {}
    #[allow(dead_code)]
    fn assert_sync<T: Sync>() {}

    #[allow(dead_code)]
    fn proofs() {
        assert_send::<heimdall_twin::session::TwinSession>();
        assert_send::<heimdall_twin::monitor::ReferenceMonitor>();
        assert_sync::<heimdall_twin::monitor::ReferenceMonitor>();
        assert_send::<heimdall_enforcer::audit::AuditLog>();
        assert_sync::<heimdall_enforcer::audit::AuditLog>();
        assert_send::<heimdall_enforcer::concurrency::CommitGuard>();
        assert_sync::<heimdall_enforcer::concurrency::CommitGuard>();
        assert_send::<crate::Broker>();
        assert_sync::<crate::Broker>();
        assert_send::<crate::SessionRegistry>();
        assert_sync::<crate::SessionRegistry>();
        assert_send::<crate::PipeEnd>();
        assert_send::<heimdall_obs::TimeSeriesStore>();
        assert_sync::<heimdall_obs::TimeSeriesStore>();
        assert_send::<heimdall_obs::SloEngine>();
    }
}
