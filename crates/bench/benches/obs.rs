//! Time-series store throughput under concurrency: 1, 8 and 32 writer
//! threads ingesting into one shared `TimeSeriesStore` (with inline
//! tiered downsampling), plus query latency against a fully-warmed
//! store at all three resolutions.
//!
//! Two modes:
//! - default: the Criterion harness (whole-round wall-clock).
//! - `--json`: measures ingest throughput per writer count and query
//!   p50/p99 per resolution, writing `BENCH_obs.json` at the workspace
//!   root. Combine with `--test` for a fast smoke pass.

use criterion::{criterion_group, BenchmarkId, Criterion};
use heimdall::obs::{Resolution, SeriesConfig, TimeSeriesStore};
use std::hint::black_box;
use std::sync::Arc;
use std::thread;

const SAMPLES_PER_WRITER: u64 = 20_000;

/// One ingest round: `writers` threads each push `per_writer` samples.
/// Half the writers share one hot series (lock contention), half write
/// their own (the sharded fast path) — both paths matter for a scrape
/// loop fanning out over stages and devices.
fn ingest_round(writers: usize, per_writer: u64) -> Arc<TimeSeriesStore> {
    let store = Arc::new(TimeSeriesStore::new(SeriesConfig::default()));
    let handles: Vec<_> = (0..writers as u64)
        .map(|w| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                let name = if w % 2 == 0 {
                    "hot.shared".to_string()
                } else {
                    format!("writer{w}.own")
                };
                for i in 0..per_writer {
                    store.push(&name, w * per_writer + i, (i % 251) as f64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }
    store
}

fn bench_obs_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_ingest");
    for &writers in &[1usize, 8, 32] {
        group.bench_with_input(
            BenchmarkId::from_parameter(writers),
            &writers,
            |b, &writers| {
                b.iter(|| black_box(ingest_round(writers, SAMPLES_PER_WRITER / writers as u64)))
            },
        );
    }
    group.finish();
}

fn bench_obs_query(c: &mut Criterion) {
    let store = ingest_round(8, SAMPLES_PER_WRITER);
    let mut group = c.benchmark_group("obs_query");
    for (name, res) in [
        ("raw", Resolution::Raw),
        ("mid", Resolution::Mid),
        ("coarse", Resolution::Coarse),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(store.query("hot.shared", 0, u64::MAX, res)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obs_ingest, bench_obs_query);

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// `--json` mode: ingest throughput per writer count plus query p50/p99
/// per resolution into `BENCH_obs.json` at the workspace root.
fn run_json(smoke: bool) {
    let levels: &[usize] = if smoke { &[1, 8] } else { &[1, 8, 32] };
    let per_writer = if smoke { 2_000 } else { SAMPLES_PER_WRITER };
    let rounds = if smoke { 1 } else { 3 };

    let mut ingest_entries = Vec::new();
    for &writers in levels {
        let mut total_samples = 0u64;
        let mut total_wall = std::time::Duration::ZERO;
        for _ in 0..rounds {
            let started = std::time::Instant::now();
            let store = ingest_round(writers, per_writer);
            total_wall += started.elapsed();
            total_samples += writers as u64 * per_writer;
            black_box(store);
        }
        let throughput = total_samples as f64 / total_wall.as_secs_f64().max(1e-9);
        println!("obs_ingest/{writers}: {throughput:.0} samples/s");
        ingest_entries.push(format!(
            "    {{\"writers\": {writers}, \"samples\": {total_samples}, \"throughput_samples_per_sec\": {throughput:.1}}}"
        ));
    }

    let store = ingest_round(8, per_writer);
    let query_rounds = if smoke { 200 } else { 2_000 };
    let mut query_entries = Vec::new();
    for (name, res) in [
        ("raw", Resolution::Raw),
        ("mid", Resolution::Mid),
        ("coarse", Resolution::Coarse),
    ] {
        let mut latencies: Vec<u64> = (0..query_rounds)
            .map(|_| {
                let t = std::time::Instant::now();
                black_box(store.query("hot.shared", 0, u64::MAX, res));
                t.elapsed().as_nanos() as u64
            })
            .collect();
        latencies.sort_unstable();
        let p50 = exact_quantile(&latencies, 0.50);
        let p99 = exact_quantile(&latencies, 0.99);
        println!("obs_query/{name}: p50 {p50}ns p99 {p99}ns");
        query_entries.push(format!(
            "    {{\"resolution\": \"{name}\", \"p50_ns\": {p50}, \"p99_ns\": {p99}}}"
        ));
    }

    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"obs\",\n  \"smoke\": {},\n",
            "  \"ingest\": [\n{}\n  ],\n  \"query\": [\n{}\n  ]\n}}\n"
        ),
        smoke,
        ingest_entries.join(",\n"),
        query_entries.join(",\n")
    );
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_obs.json");
    std::fs::write(&path, json).expect("write BENCH_obs.json");
    println!("wrote {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--json") {
        run_json(args.iter().any(|a| a == "--test"));
    } else {
        benches();
    }
}
