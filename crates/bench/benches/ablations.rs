//! Ablation benches for the design choices DESIGN.md §5 calls out, plus
//! substrate micro-benchmarks.
//!
//! 1. **Continuous verification vs verify-at-import** (§4.3 strawman):
//!    checking all policies after every technician action vs once when the
//!    change-set is imported.
//! 2. **Naive vs dependency-aware scheduling**: transient-violation counts
//!    and planning cost.
//! 3. **Slicing strategies**: task-driven vs All vs Neighbor — build cost
//!    and exposure.
//! 4. **Substrate micro-benches**: convergence, flow tracing, policy
//!    checking, audit chaining, SHA-256.

use criterion::{criterion_group, criterion_main, Criterion};
use heimdall::dataplane::{DataPlane, Flow};
use heimdall::enforcer::audit::{AuditKind, AuditLog};
use heimdall::enforcer::crypto::sha256;
use heimdall::enforcer::{naive_schedule, schedule};
use heimdall::msp::issues::{inject_issue, IssueKind};
use heimdall::netmodel::diff::diff_networks;
use heimdall::nets::{enterprise, university};
use heimdall::privilege::derive::{derive_privileges, Task};
use heimdall::routing::converge;
use heimdall::twin::session::TwinSession;
use heimdall::twin::slice::{slice_all, slice_for_task, slice_neighbors};
use heimdall::verify::checker::check_policies;
use std::hint::black_box;

/// Ablation 1: verification placement.
fn bench_verification_placement(c: &mut Criterion) {
    let (net, meta, policies) = enterprise();
    let mut broken = net;
    let issue = inject_issue(&mut broken, &meta, IssueKind::AclDeny).expect("acl issue");
    let task = Task {
        kind: issue.task_kind,
        affected: issue.affected.clone(),
    };
    let spec = derive_privileges(&broken, &task);
    let twin = slice_for_task(&broken, &task);

    let mut g = c.benchmark_group("ablation/verification");
    // Verify once, at import (Heimdall's choice).
    g.bench_function("at_import", |b| {
        b.iter(|| {
            let mut s = TwinSession::open("t", twin.clone(), spec.clone());
            for (d, cmd) in &issue.fix {
                let _ = s.exec(d, cmd);
            }
            let (diff, _) = s.finish();
            let mut patched = broken.clone();
            diff.apply_to_network(&mut patched).expect("applies");
            let cp = converge(&patched);
            black_box(check_policies(&patched, &cp, &policies))
        })
    });
    // Verify continuously, after every action (the strawman the paper
    // rejects: "verifying the policy is time-consuming ... and can
    // significantly slow down a technician's work").
    g.bench_function("continuous", |b| {
        b.iter(|| {
            let mut s = TwinSession::open("t", twin.clone(), spec.clone());
            let mut reports = 0usize;
            for (d, cmd) in &issue.fix {
                let _ = s.exec(d, cmd);
                let twin_net = {
                    // Snapshot current twin changes without closing it.
                    let diff =
                        heimdall::netmodel::diff::diff_networks(&twin.net, s.emu_mut().network());
                    let mut patched = broken.clone();
                    let _ = diff.apply_to_network(&mut patched);
                    patched
                };
                let cp = converge(&twin_net);
                reports += check_policies(&twin_net, &cp, &policies).results.len();
            }
            black_box(reports)
        })
    });
    g.finish();
}

/// Ablation 2: scheduling strategy.
fn bench_scheduling(c: &mut Criterion) {
    let (net, meta, policies) = enterprise();
    let mut broken = net.clone();
    let issue = inject_issue(&mut broken, &meta, IssueKind::Isp).expect("isp issue");
    // The fix applied to broken production is the change-set to schedule.
    let mut fixed = broken.clone();
    {
        let mut emu = heimdall::twin::emu::EmulatedNetwork::new(fixed.clone());
        for (d, cmd) in &issue.fix {
            let parsed = heimdall::twin::console::Command::parse(cmd).expect("parses");
            let _ = heimdall::twin::console::execute(&mut emu, d, &parsed);
        }
        fixed = emu.network().clone();
    }
    let diff = diff_networks(&broken, &fixed);

    let naive = naive_schedule(&broken, &diff, &policies);
    let planned = schedule(&broken, &diff, &policies);
    println!(
        "\n=== Ablation: scheduling (isp change-set, {} changes) ===",
        diff.len()
    );
    println!(
        "naive order transient violations: {}; dependency-aware: {}",
        naive.transient_count(),
        planned.transient_count()
    );

    let mut g = c.benchmark_group("ablation/scheduling");
    g.bench_function("naive", |b| {
        b.iter(|| black_box(naive_schedule(&broken, &diff, &policies)))
    });
    g.bench_function("dependency_aware", |b| {
        b.iter(|| black_box(schedule(&broken, &diff, &policies)))
    });
    g.finish();
}

/// Ablation 3: slicing strategy (cost + exposure).
fn bench_slicing(c: &mut Criterion) {
    let (net, _, _) = enterprise();
    let task = Task::connectivity("h7", "srv1");
    println!(
        "\n=== Ablation: slicing exposure (devices cloned of {}) ===",
        net.device_count()
    );
    println!("  all:       {}", slice_all(&net).net.device_count());
    println!(
        "  neighbor:  {}",
        slice_neighbors(&net, &task).net.device_count()
    );
    println!(
        "  heimdall:  {}",
        slice_for_task(&net, &task).net.device_count()
    );

    let mut g = c.benchmark_group("ablation/slicing");
    g.bench_function("all", |b| b.iter(|| black_box(slice_all(&net))));
    g.bench_function("neighbor", |b| {
        b.iter(|| black_box(slice_neighbors(&net, &task)))
    });
    g.bench_function("task_driven", |b| {
        b.iter(|| black_box(slice_for_task(&net, &task)))
    });
    g.finish();
}

/// Substrate micro-benchmarks.
fn bench_substrates(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro");

    let (ent, _, ent_policies) = enterprise();
    let (uni, _, uni_policies) = university();
    g.bench_function("converge/enterprise", |b| {
        b.iter(|| black_box(converge(&ent)))
    });
    g.bench_function("converge/university", |b| {
        b.iter(|| black_box(converge(&uni)))
    });

    let cp = converge(&ent);
    let dp = DataPlane::new(&ent, &cp);
    let flow = Flow::probe("10.1.1.10".parse().unwrap(), "10.2.1.10".parse().unwrap());
    let src = ent.idx_of("h1");
    g.bench_function("trace/enterprise_h1_srv1", |b| {
        b.iter(|| black_box(dp.trace_all(src, &flow)))
    });

    g.bench_function("check_policies/enterprise_21", |b| {
        b.iter(|| black_box(check_policies(&ent, &cp, &ent_policies)))
    });
    let uni_cp = converge(&uni);
    g.bench_function("check_policies/university_175", |b| {
        b.iter(|| black_box(check_policies(&uni, &uni_cp, &uni_policies)))
    });

    g.bench_function("audit/append_1000_verify", |b| {
        b.iter(|| {
            let mut log = AuditLog::new();
            for i in 0..1000 {
                log.append(AuditKind::Command, "t", &format!("cmd {i}"));
            }
            black_box(log.verify_chain().is_ok())
        })
    });

    let blob = vec![0xabu8; 64 * 1024];
    g.bench_function("sha256/64KiB", |b| b.iter(|| black_box(sha256(&blob))));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_verification_placement, bench_scheduling, bench_slicing, bench_substrates
}
criterion_main!(benches);
