//! Broker throughput under concurrency: the full open → exec → finish →
//! enforce cycle for 1, 8, 32 and 128 simultaneous technician sessions
//! against one shared production network.
//!
//! Every session edits the same device (fw1), so higher session counts
//! also measure the optimistic-commit retry path, not just thread fan-out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heimdall::netmodel::gen::enterprise_network;
use heimdall::netmodel::topology::Network;
use heimdall::privilege::derive::{Task, TaskKind};
use heimdall::routing::converge;
use heimdall::service::{Broker, BrokerConfig};
use heimdall::verify::mine::{mine_policies, MinerInput};
use heimdall::verify::policy::PolicySet;
use std::hint::black_box;
use std::sync::Arc;
use std::thread;

fn production_and_policies() -> (Network, PolicySet) {
    let g = enterprise_network();
    let cp = converge(&g.net);
    let policies = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
    (g.net, policies)
}

/// One full technician cycle; returns whether the commit applied.
fn run_session(broker: &Broker, i: usize) -> bool {
    let host = ["h1", "h4", "h7"][i % 3];
    let ticket = Task {
        kind: TaskKind::Routing,
        affected: vec![host.to_string(), "srv1".to_string()],
    };
    let (id, _) = broker
        .open_session(&format!("tech{i:03}"), ticket)
        .expect("open");
    broker
        .exec(
            id,
            "fw1",
            &format!("ip route 10.{}.0.0 255.255.255.0 10.2.1.10", 64 + i),
        )
        .expect("exec");
    broker.finish(id).expect("finish").applied
}

fn bench_broker_sessions(c: &mut Criterion) {
    let (production, policies) = production_and_policies();
    let mut group = c.benchmark_group("broker_sessions");
    for &sessions in &[1usize, 8, 32, 128] {
        group.bench_with_input(
            BenchmarkId::from_parameter(sessions),
            &sessions,
            |b, &sessions| {
                b.iter(|| {
                    let config = BrokerConfig {
                        max_commit_retries: 256,
                        rate_capacity: 4096,
                        rate_refill_per_sec: 1e6,
                        ..BrokerConfig::default()
                    };
                    let broker =
                        Arc::new(Broker::new(production.clone(), policies.clone(), config));
                    let handles: Vec<_> = (0..sessions)
                        .map(|i| {
                            let broker = Arc::clone(&broker);
                            thread::spawn(move || run_session(&broker, i))
                        })
                        .collect();
                    for h in handles {
                        assert!(h.join().expect("session thread"), "lost commit");
                    }
                    black_box(broker.stats());
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_broker_sessions);
criterion_main!(benches);
