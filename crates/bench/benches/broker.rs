//! Broker throughput under concurrency: the full open → exec → finish →
//! enforce cycle for 1, 8, 32 and 128 simultaneous technician sessions
//! against one shared production network.
//!
//! Every session edits the same device (fw1), so higher session counts
//! also measure the optimistic-commit retry path, not just thread fan-out.
//!
//! Two modes:
//! - default: the Criterion harness (whole-round wall-clock).
//! - `--json`: measures per-session latency (p50/p99) and sessions/sec at
//!   each concurrency level and writes `BENCH_broker.json` at the
//!   workspace root — the machine-readable record CI and regression
//!   tooling can diff. Combine with `--test` for a fast smoke pass.
//!   (The tracked `BENCH_service.json` is owned by the `service_net`
//!   bench, which measures the same cycle over real sockets.)

use criterion::{criterion_group, BenchmarkId, Criterion};
use heimdall::netmodel::gen::enterprise_network;
use heimdall::netmodel::topology::Network;
use heimdall::privilege::derive::{Task, TaskKind};
use heimdall::routing::converge;
use heimdall::service::{Broker, BrokerConfig};
use heimdall::verify::mine::{mine_policies, MinerInput};
use heimdall::verify::policy::PolicySet;
use std::hint::black_box;
use std::sync::Arc;
use std::thread;

fn production_and_policies() -> (Network, PolicySet) {
    let g = enterprise_network();
    let cp = converge(&g.net);
    let policies = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
    (g.net, policies)
}

/// One full technician cycle; returns whether the commit applied.
fn run_session(broker: &Broker, i: usize) -> bool {
    let host = ["h1", "h4", "h7"][i % 3];
    let ticket = Task {
        kind: TaskKind::Routing,
        affected: vec![host.to_string(), "srv1".to_string()],
    };
    let (id, _) = broker
        .open_session(&format!("tech{i:03}"), ticket)
        .expect("open");
    broker
        .exec(
            id,
            "fw1",
            &format!("ip route 10.{}.0.0 255.255.255.0 10.2.1.10", 64 + i),
        )
        .expect("exec");
    broker.finish(id).expect("finish").applied
}

fn bench_broker_sessions(c: &mut Criterion) {
    let (production, policies) = production_and_policies();
    let mut group = c.benchmark_group("broker_sessions");
    for &sessions in &[1usize, 8, 32, 128] {
        group.bench_with_input(
            BenchmarkId::from_parameter(sessions),
            &sessions,
            |b, &sessions| {
                b.iter(|| {
                    let config = BrokerConfig {
                        max_commit_retries: 256,
                        rate_capacity: 4096,
                        rate_refill_per_sec: 1e6,
                        ..BrokerConfig::default()
                    };
                    let broker =
                        Arc::new(Broker::new(production.clone(), policies.clone(), config));
                    let handles: Vec<_> = (0..sessions)
                        .map(|i| {
                            let broker = Arc::clone(&broker);
                            thread::spawn(move || run_session(&broker, i))
                        })
                        .collect();
                    for h in handles {
                        assert!(h.join().expect("session thread"), "lost commit");
                    }
                    black_box(broker.stats());
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_broker_sessions);

/// One measured round at `sessions`-way concurrency: per-session
/// latencies (ns) plus the round's wall-clock span.
fn measure_round(
    production: &Network,
    policies: &PolicySet,
    sessions: usize,
) -> (Vec<u64>, std::time::Duration) {
    let config = BrokerConfig {
        max_commit_retries: 256,
        rate_capacity: 4096,
        rate_refill_per_sec: 1e6,
        ..BrokerConfig::default()
    };
    let broker = Arc::new(Broker::new(production.clone(), policies.clone(), config));
    let started = std::time::Instant::now();
    let handles: Vec<_> = (0..sessions)
        .map(|i| {
            let broker = Arc::clone(&broker);
            thread::spawn(move || {
                let t = std::time::Instant::now();
                assert!(run_session(&broker, i), "lost commit");
                t.elapsed().as_nanos() as u64
            })
        })
        .collect();
    let latencies = handles
        .into_iter()
        .map(|h| h.join().expect("session thread"))
        .collect();
    (latencies, started.elapsed())
}

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// `--json` mode: per-concurrency p50/p99/throughput into
/// `BENCH_broker.json` at the workspace root.
fn run_json(smoke: bool) {
    let (production, policies) = production_and_policies();
    let levels: &[usize] = if smoke { &[1, 8] } else { &[1, 8, 32, 128] };
    let rounds = if smoke { 1 } else { 3 };
    let mut entries = Vec::new();
    for &sessions in levels {
        let mut latencies = Vec::new();
        let mut total_wall = std::time::Duration::ZERO;
        for _ in 0..rounds {
            let (mut l, wall) = measure_round(&production, &policies, sessions);
            latencies.append(&mut l);
            total_wall += wall;
        }
        latencies.sort_unstable();
        let p50 = exact_quantile(&latencies, 0.50);
        let p99 = exact_quantile(&latencies, 0.99);
        let throughput = latencies.len() as f64 / total_wall.as_secs_f64().max(1e-9);
        println!("broker_sessions/{sessions}: p50 {p50}ns p99 {p99}ns {throughput:.1} sessions/s");
        entries.push(format!(
            concat!(
                "    {{\"concurrency\": {}, \"sessions_measured\": {}, ",
                "\"p50_ns\": {}, \"p99_ns\": {}, ",
                "\"throughput_sessions_per_sec\": {:.3}}}"
            ),
            sessions,
            latencies.len(),
            p50,
            p99,
            throughput
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"broker_sessions\",\n  \"smoke\": {},\n  \"levels\": [\n{}\n  ]\n}}\n",
        smoke,
        entries.join(",\n")
    );
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_broker.json");
    std::fs::write(&path, json).expect("write BENCH_broker.json");
    println!("wrote {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--json") {
        run_json(args.iter().any(|a| a == "--test"));
    } else {
        benches();
    }
}
