//! Figure 7: time to solve three real issues (vlan, ospf, isp) on the
//! enterprise network — regenerates the figure's table, then benchmarks
//! each (issue × approach) workflow end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use heimdall::msp::issues::{inject_issue, IssueKind};
use heimdall::nets::enterprise;
use heimdall::workflow::{run_current_approach, run_heimdall};
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let rows = heimdall::experiments::fig7();
    println!("\n=== Figure 7 (paper: +28 s avg overhead; 15 s isp, 42 s vlan) ===");
    println!("{}", heimdall::experiments::render_fig7(&rows));
    println!("measured simulator wall time per engagement:");
    for r in &rows {
        println!(
            "  {:<5} current {:>8} us   heimdall {:>8} us",
            r.issue, r.current_wall_us, r.heimdall_wall_us
        );
    }

    let mut g = c.benchmark_group("fig7");
    for kind in [IssueKind::Vlan, IssueKind::Ospf, IssueKind::Isp] {
        let (net, meta, policies) = enterprise();
        let mut broken = net;
        let issue = inject_issue(&mut broken, &meta, kind).expect("enterprise issue");
        g.bench_function(format!("{}/current", kind.label()), |b| {
            b.iter(|| black_box(run_current_approach(&broken, &issue)))
        });
        g.bench_function(format!("{}/heimdall", kind.label()), |b| {
            b.iter(|| black_box(run_heimdall(&broken, &issue, &policies)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig7
}
criterion_main!(benches);
