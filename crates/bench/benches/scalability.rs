//! Scalability: how the substrates grow with network size.
//!
//! The paper's practicality argument ("Heimdall should be low-overhead")
//! rests on the machinery staying cheap as networks grow. This bench
//! sweeps random networks from 10 to 80 routers and measures convergence,
//! policy mining, full-workflow latency, and twin slicing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heimdall::netmodel::gen::{random_network, RandomNetConfig};
use heimdall::privilege::derive::{derive_privileges, Task};
use heimdall::routing::converge;
use heimdall::twin::slice::slice_for_task;
use heimdall::verify::mine::{mine_policies, MinerInput};
use std::hint::black_box;

fn cfg(routers: usize) -> RandomNetConfig {
    RandomNetConfig {
        routers,
        extra_links: routers / 2,
        lans: (routers / 3).max(2),
        hosts_per_lan: 2,
    }
}

fn bench_scalability(c: &mut Criterion) {
    let mut g = c.benchmark_group("scalability");
    for routers in [10usize, 20, 40, 80] {
        let net = random_network(42, cfg(routers));
        g.bench_with_input(BenchmarkId::new("converge", routers), &net, |b, net| {
            b.iter(|| black_box(converge(&net.net)))
        });

        let cp = converge(&net.net);
        let input = MinerInput::from_meta(&net.meta);
        g.bench_with_input(BenchmarkId::new("mine", routers), &net, |b, net| {
            b.iter(|| black_box(mine_policies(&net.net, &cp, &input)))
        });

        // Ticket between the two most distant LAN hosts.
        let hosts: Vec<String> = net
            .net
            .devices()
            .filter(|(_, d)| d.kind == heimdall::netmodel::device::DeviceKind::Host)
            .map(|(_, d)| d.name.clone())
            .collect();
        if hosts.len() >= 2 {
            let task = Task::connectivity(&hosts[0], &hosts[hosts.len() - 1]);
            g.bench_with_input(
                BenchmarkId::new("derive_privileges", routers),
                &net,
                |b, net| b.iter(|| black_box(derive_privileges(&net.net, &task))),
            );
            g.bench_with_input(BenchmarkId::new("slice_twin", routers), &net, |b, net| {
                b.iter(|| black_box(slice_for_task(&net.net, &task)))
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scalability
}
criterion_main!(benches);
