//! Table 1: evaluation networks — regenerates the table, then benchmarks
//! its three production stages (generation, convergence, mining) per
//! network.

use criterion::{criterion_group, criterion_main, Criterion};
use heimdall::netmodel::gen::{enterprise_network, university_network};
use heimdall::routing::converge;
use heimdall::verify::mine::{mine_policies, MinerInput};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    // Regenerate and print the table once (the experiment record).
    let rows = heimdall::experiments::table1();
    println!("\n=== Table 1 (paper: 9/9/22/21/1394 and 13/17/92/175/2146) ===");
    println!("{}", heimdall::experiments::render_table1(&rows));

    type GenFn = fn() -> heimdall::netmodel::gen::GeneratedNet;
    let mut g = c.benchmark_group("table1");
    let gens: [(&str, GenFn); 2] = [
        ("enterprise", enterprise_network),
        ("university", university_network),
    ];
    for (name, gen) in gens {
        g.bench_function(format!("{name}/generate"), |b| b.iter(|| black_box(gen())));
        let net = gen();
        g.bench_function(format!("{name}/converge"), |b| {
            b.iter(|| black_box(converge(&net.net)))
        });
        let cp = converge(&net.net);
        let input = MinerInput::from_meta(&net.meta);
        g.bench_function(format!("{name}/mine_policies"), |b| {
            b.iter(|| black_box(mine_policies(&net.net, &cp, &input)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table1
}
criterion_main!(benches);
