//! Figure 8: feasibility and attack surface on the enterprise network —
//! regenerates the figure (full interface-down sweep), then benchmarks the
//! sweep and its component metric.

use criterion::{criterion_group, criterion_main, Criterion};
use heimdall::baselines::AccessMode;
use heimdall::metrics::attack_surface;
use heimdall::nets::enterprise;
use heimdall::privilege::derive::Task;
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let summary = heimdall::experiments::fig8();
    println!("\n=== Figure 8 (paper: up to ~39-point reduction vs All; feasibility ~= All) ===");
    println!("{}", heimdall::experiments::render_surface(&summary));

    let (net, _, policies) = enterprise();
    let task = Task::connectivity("h4", "srv1");

    let mut g = c.benchmark_group("fig8");
    for mode in [AccessMode::All, AccessMode::Neighbor, AccessMode::Heimdall] {
        let spec = mode.privileges(&net, &task);
        g.bench_function(format!("attack_surface/{}", mode.label()), |b| {
            b.iter(|| black_box(attack_surface(&net, &policies, &spec, mode.enforced())))
        });
    }
    g.bench_function("sweep/full", |b| {
        b.iter(|| {
            black_box(heimdall::experiments::surface_sweep(
                &net,
                &policies,
                1,
                "enterprise",
            ))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig8
}
criterion_main!(benches);
