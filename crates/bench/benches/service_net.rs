//! `bench service-net`: the broker fleet measured over real TCP
//! sockets — handshake, multiplexed frames, sharded brokers and all.
//!
//! Two measurements, both written to `BENCH_service.json` at the
//! workspace root (git-tracked — the perf trajectory is part of the
//! repo's record):
//!
//! - **Connection sweep**: N authenticated connections (one tenant
//!   each) run full open → exec → finish session cycles against a
//!   4-shard fleet; per-session latency p50/p99 and fleet throughput
//!   are reported per concurrency level, up to 1024 connections.
//! - **Shard scaling**: the same contended workload at 32 connections
//!   against 1 shard vs 4 shards. On a single core the win is not
//!   parallelism — it is that each shard carries a quarter of the
//!   committed state, so every snapshot, verify and converge pass
//!   touches a smaller production. Full mode asserts the 4-shard
//!   fleet clears 2.5x the single-shard throughput.
//! - **Subscriber fan-out**: N authenticated connections (each holding
//!   a live session, the standing view grant that authorizes
//!   fleet-scoped streams) subscribe to the `Net` topic; the bench
//!   publishes a run of `NetThreshold` events through the server's bus
//!   and measures publish-to-receipt latency at every subscriber, at
//!   1, 64 and 256 subscribers. Queues are sized so nothing is ever
//!   gap-marked — every published event reaches every subscriber.
//!
//! Modes: default runs the Criterion harness over a small sweep;
//! `--json` runs the full sweep and writes the JSON artifact;
//! `--json --test` is the CI smoke variant (two levels, no scaling
//! assertion).

use criterion::{criterion_group, BenchmarkId, Criterion};
use heimdall::net::{BoundAcceptor, BrokerFleet, NetClient, NetConfig, NetServer, TenantKeys};
use heimdall::netmodel::gen::enterprise_network;
use heimdall::netmodel::topology::Network;
use heimdall::obs::{ObsEvent, Topic};
use heimdall::privilege::derive::{Task, TaskKind};
use heimdall::routing::converge;
use heimdall::service::{BrokerConfig, Request, Response};
use heimdall::verify::mine::{mine_policies, MinerInput};
use heimdall::verify::policy::PolicySet;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

fn production_and_policies() -> (Network, PolicySet) {
    let g = enterprise_network();
    let cp = converge(&g.net);
    let policies = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
    (g.net, policies)
}

fn broker_config() -> BrokerConfig {
    BrokerConfig {
        max_commit_retries: 256,
        rate_capacity: 4096,
        rate_refill_per_sec: 1e6,
        ..BrokerConfig::default()
    }
}

/// Sized for connection storms: deep shard queues so 1k in-flight
/// requests never bounce as `Backpressure`, and generous timeouts so a
/// 3k-thread pileup on a small CPU cannot miss a handshake deadline.
fn net_config() -> NetConfig {
    NetConfig {
        shard_queue_depth: 4096,
        handshake_timeout: Duration::from_secs(60),
        write_timeout: Duration::from_secs(60),
        ..NetConfig::default()
    }
}

fn key_for(tenant: &str) -> Vec<u8> {
    format!("bench-key-{tenant}").into_bytes()
}

fn tenant_name(i: usize) -> String {
    format!("t{i:04}")
}

/// Connects with retries: a 1k-connection storm overflows the listen
/// backlog, so refused/reset attempts back off and try again.
fn connect_retry(addr: &str, tenant: &str) -> NetClient {
    let key = key_for(tenant);
    let mut last = String::new();
    for _ in 0..500 {
        match NetClient::connect_tcp(addr, tenant, &key) {
            Ok(c) => return c,
            Err(e) => {
                last = e.to_string();
                thread::sleep(Duration::from_millis(20));
            }
        }
    }
    panic!("{tenant}: could not connect to {addr}: {last}");
}

/// One full session cycle over the wire: open, `routes` route-add
/// execs, finish. `n` disambiguates the prefixes so concurrent diffs
/// always compose; `routes` sets how much state each commit adds to
/// its shard's production. Returns applied.
fn run_cycle(client: &mut NetClient, n: usize, routes: usize) -> bool {
    let session = match client
        .call(Request::OpenSession {
            technician: String::new(),
            ticket: Task {
                kind: TaskKind::Routing,
                affected: vec![["h1", "h4", "h7"][n % 3].to_string(), "srv1".to_string()],
            },
        })
        .expect("open session")
    {
        Response::SessionOpened { session, .. } => session,
        other => panic!("expected SessionOpened, got {other:?}"),
    };
    for j in 0..routes {
        let m = n * routes + j;
        let resp = client
            .call(Request::Exec {
                session,
                device: "fw1".to_string(),
                line: format!(
                    "ip route 10.{}.{}.0 255.255.255.0 10.2.1.10",
                    16 + m / 200,
                    m % 200
                ),
            })
            .expect("exec");
        assert!(matches!(resp, Response::ExecOutput { .. }), "{resp:?}");
    }
    match client.call(Request::Finish { session }).expect("finish") {
        Response::Finished { applied, .. } => applied,
        other => panic!("expected Finished, got {other:?}"),
    }
}

/// One measured round: `conns` authenticated connections each run
/// `cycles` full session cycles. Returns per-session latencies (ns)
/// and the round's wall clock (barrier release to last completion).
fn measure_level(
    production: &Network,
    policies: &PolicySet,
    shards: usize,
    conns: usize,
    cycles: usize,
    routes: usize,
) -> (Vec<u64>, Duration) {
    let fleet = Arc::new(BrokerFleet::from_template(
        production,
        policies,
        &broker_config(),
        shards,
    ));
    let mut keys = TenantKeys::new();
    for i in 0..conns {
        let t = tenant_name(i);
        keys.insert(&t, &key_for(&t));
    }
    let (acceptor, addr) = BoundAcceptor::tcp("127.0.0.1:0").expect("bind tcp");
    let server = NetServer::start(Arc::clone(&fleet), keys, net_config(), vec![acceptor]);
    let addr = addr.to_string();

    let barrier = Arc::new(Barrier::new(conns + 1));
    let workers: Vec<_> = (0..conns)
        .map(|i| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let tenant = tenant_name(i);
                let mut client = connect_retry(&addr, &tenant);
                barrier.wait();
                let mut latencies = Vec::with_capacity(cycles);
                for c in 0..cycles {
                    let t = Instant::now();
                    assert!(
                        run_cycle(&mut client, i * cycles + c, routes),
                        "lost commit"
                    );
                    latencies.push(t.elapsed().as_nanos() as u64);
                }
                client.bye().ok();
                latencies
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    let latencies: Vec<u64> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("client thread"))
        .collect();
    let wall = started.elapsed();
    let report = server.shutdown();
    assert!(report.journals_synced, "shutdown sync barrier");
    assert_eq!(
        fleet.aggregate_stats().commits_applied,
        (conns * cycles) as u64,
        "every acked cycle is a fleet commit"
    );
    (latencies, wall)
}

/// One fan-out round: `subscribers` connections each open a session
/// (the view grant that authorizes fleet-scoped topics), subscribe to
/// `Net`, then the bench publishes `events` numbered `NetThreshold`
/// events through the server's bus. Returns every subscriber's
/// publish-to-receipt latency (ns) — `subscribers * events` samples.
fn measure_fanout(
    production: &Network,
    policies: &PolicySet,
    subscribers: usize,
    events: usize,
) -> Vec<u64> {
    let fleet = Arc::new(BrokerFleet::from_template(
        production,
        policies,
        &broker_config(),
        4,
    ));
    let mut keys = TenantKeys::new();
    for i in 0..subscribers {
        let t = tenant_name(i);
        keys.insert(&t, &key_for(&t));
    }
    // Deep enough that even a subscriber that never drained during the
    // publish run could not lose an event: the measurement is latency,
    // not loss, so gap markers would invalidate the sample set.
    let mut cfg = net_config();
    cfg.event_queue_depth = events + 8;
    cfg.write_queue_depth = events + 8;
    let (acceptor, addr) = BoundAcceptor::tcp("127.0.0.1:0").expect("bind tcp");
    let server = NetServer::start(Arc::clone(&fleet), keys, cfg, vec![acceptor]);
    let addr = addr.to_string();

    let epoch = Instant::now();
    let publish_ns: Arc<Vec<AtomicU64>> =
        Arc::new((0..events).map(|_| AtomicU64::new(0)).collect());
    let barrier = Arc::new(Barrier::new(subscribers + 1));
    let workers: Vec<_> = (0..subscribers)
        .map(|i| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            let publish_ns = Arc::clone(&publish_ns);
            thread::spawn(move || {
                let tenant = tenant_name(i);
                let mut client = connect_retry(&addr, &tenant);
                match client
                    .call(Request::OpenSession {
                        technician: String::new(),
                        ticket: Task {
                            kind: TaskKind::Routing,
                            affected: vec!["h4".to_string(), "srv1".to_string()],
                        },
                    })
                    .expect("open session")
                {
                    Response::SessionOpened { .. } => {}
                    other => panic!("expected SessionOpened, got {other:?}"),
                }
                client.subscribe(&[Topic::Net]).expect("subscribe Net");
                barrier.wait();
                let mut latencies = Vec::with_capacity(events);
                while latencies.len() < events {
                    match client.next_event().expect("event stream") {
                        (_, ObsEvent::NetThreshold { value, .. }) => {
                            let sent = publish_ns[value as usize].load(Ordering::Acquire);
                            let now = epoch.elapsed().as_nanos() as u64;
                            latencies.push(now.saturating_sub(sent));
                        }
                        (_, ObsEvent::Lagged { dropped }) => {
                            panic!("fan-out bench must not lag (dropped {dropped})")
                        }
                        _ => {}
                    }
                }
                client.bye().ok();
                latencies
            })
        })
        .collect();
    barrier.wait();
    let bus = server.event_bus();
    for k in 0..events {
        publish_ns[k].store(epoch.elapsed().as_nanos() as u64, Ordering::Release);
        bus.publish(&ObsEvent::NetThreshold {
            counter: "bench_fanout".to_string(),
            value: k as u64,
            threshold: 0,
            at_ns: k as u64,
        });
        // Paced: the writers get to drain, so the tail of the run does
        // not measure queueing behind the bench's own burst.
        thread::sleep(Duration::from_micros(500));
    }
    let latencies: Vec<u64> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("subscriber thread"))
        .collect();
    assert_eq!(latencies.len(), subscribers * events, "conservation");
    server.shutdown();
    latencies
}

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Criterion mode: whole-round wall clock at a few small levels.
fn bench_service_net(c: &mut Criterion) {
    let (production, policies) = production_and_policies();
    let mut group = c.benchmark_group("service_net");
    group.sample_size(10);
    for &conns in &[1usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(conns), &conns, |b, &conns| {
            b.iter(|| black_box(measure_level(&production, &policies, 4, conns, 1, 1)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_service_net);

/// `--json` mode: the sweep + shard scaling, into `BENCH_service.json`.
fn run_json(smoke: bool) {
    let (production, policies) = production_and_policies();
    const SHARDS: usize = 4;
    // (connections, cycles-per-connection): higher levels run fewer
    // cycles so the sweep stays tractable while still holding every
    // connection concurrently open and committing.
    let levels: &[(usize, usize)] = if smoke {
        &[(1, 2), (32, 1)]
    } else {
        &[(1, 16), (8, 8), (32, 4), (128, 2), (512, 1), (1024, 1)]
    };
    let mut entries = Vec::new();
    for &(conns, cycles) in levels {
        let (mut latencies, wall) = measure_level(&production, &policies, SHARDS, conns, cycles, 1);
        latencies.sort_unstable();
        let p50 = exact_quantile(&latencies, 0.50);
        let p99 = exact_quantile(&latencies, 0.99);
        let throughput = latencies.len() as f64 / wall.as_secs_f64().max(1e-9);
        println!(
            "service_net/{conns} conns x {cycles}: p50 {p50}ns p99 {p99}ns {throughput:.1} sessions/s"
        );
        entries.push(format!(
            concat!(
                "    {{\"connections\": {}, \"cycles_per_connection\": {}, ",
                "\"sessions_measured\": {}, \"p50_ns\": {}, \"p99_ns\": {}, ",
                "\"throughput_sessions_per_sec\": {:.3}}}"
            ),
            conns,
            cycles,
            latencies.len(),
            p50,
            p99,
            throughput
        ));
    }

    // Subscriber fan-out: publish-to-receipt latency of pushed events
    // as the audience grows. The interesting number is the p99 at 256
    // subscribers versus 1 — the cost of fanning one event out across
    // every bounded per-subscriber queue and write queue.
    let fanout_levels: &[(usize, usize)] = if smoke {
        &[(1, 16), (8, 16)]
    } else {
        &[(1, 128), (64, 128), (256, 64)]
    };
    let mut fanout_entries = Vec::new();
    for &(subs, events) in fanout_levels {
        let mut lats = measure_fanout(&production, &policies, subs, events);
        lats.sort_unstable();
        let p50 = exact_quantile(&lats, 0.50);
        let p99 = exact_quantile(&lats, 0.99);
        println!(
            "subscriber_fanout/{subs} subs x {events} events: p50 {p50}ns p99 {p99}ns ({} deliveries)",
            lats.len()
        );
        fanout_entries.push(format!(
            concat!(
                "    {{\"subscribers\": {}, \"events\": {}, \"deliveries\": {}, ",
                "\"p50_ns\": {}, \"p99_ns\": {}}}"
            ),
            subs,
            events,
            lats.len(),
            p50,
            p99
        ));
    }

    // Shard scaling at 32 connections: same offered load, 1 vs 4
    // shards. On one core the win is state partitioning, not
    // parallelism: every commit grows its shard's production config, and
    // session cost (snapshot clone, base fingerprint, converge, verify)
    // grows with it. The single shard absorbs all 32 tenants' commits —
    // 4x the per-shard state of the 4-shard fleet — so the run is long
    // enough for that 4x to dominate the fixed per-session cost. Smoke
    // mode runs a single light cycle (artifact shape only); full mode
    // runs the contended workload and enforces the 2.5x acceptance bar.
    let (scale_cycles, scale_routes) = if smoke { (1, 1) } else { (192, 1) };
    let (l1, w1) = measure_level(&production, &policies, 1, 32, scale_cycles, scale_routes);
    let (l4, w4) = measure_level(
        &production,
        &policies,
        SHARDS,
        32,
        scale_cycles,
        scale_routes,
    );
    let t1 = l1.len() as f64 / w1.as_secs_f64().max(1e-9);
    let t4 = l4.len() as f64 / w4.as_secs_f64().max(1e-9);
    let speedup = t4 / t1.max(1e-9);
    println!(
        "shard_scaling/32 conns x {scale_cycles} x {scale_routes} routes: 1 shard {t1:.1}/s, {SHARDS} shards {t4:.1}/s ({speedup:.2}x)"
    );
    if !smoke {
        assert!(
            speedup >= 2.5,
            "4-shard fleet must clear 2.5x single-shard throughput at 32 conns, got {speedup:.2}x"
        );
    }

    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"service_net\",\n  \"smoke\": {},\n",
            "  \"transport\": \"tcp localhost\",\n  \"shards\": {},\n",
            "  \"levels\": [\n{}\n  ],\n",
            "  \"subscriber_fanout\": [\n{}\n  ],\n",
            "  \"shard_scaling\": {{\"connections\": 32, \"cycles_per_connection\": {}, ",
            "\"routes_per_session\": {}, \"single_shard_sessions_per_sec\": {:.3}, ",
            "\"four_shard_sessions_per_sec\": {:.3}, \"speedup\": {:.3}}}\n}}\n"
        ),
        smoke,
        SHARDS,
        entries.join(",\n"),
        fanout_entries.join(",\n"),
        scale_cycles,
        scale_routes,
        t1,
        t4,
        speedup
    );
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_service.json");
    std::fs::write(&path, json).expect("write BENCH_service.json");
    println!("wrote {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--scale") {
        // Tuning probe: just the shard-scaling comparison, no artifact.
        let (production, policies) = production_and_policies();
        let pos = args.iter().position(|a| a == "--scale").unwrap();
        let cycles: usize = args.get(pos + 1).and_then(|v| v.parse().ok()).unwrap_or(8);
        let routes: usize = args.get(pos + 2).and_then(|v| v.parse().ok()).unwrap_or(8);
        let (l1, w1) = measure_level(&production, &policies, 1, 32, cycles, routes);
        let (l4, w4) = measure_level(&production, &policies, 4, 32, cycles, routes);
        let t1 = l1.len() as f64 / w1.as_secs_f64().max(1e-9);
        let t4 = l4.len() as f64 / w4.as_secs_f64().max(1e-9);
        println!(
            "scale probe @32x{cycles}x{routes}: 1 shard {t1:.1}/s, 4 shards {t4:.1}/s ({:.2}x)",
            t4 / t1.max(1e-9)
        );
    } else if args.iter().any(|a| a == "--json") {
        run_json(args.iter().any(|a| a == "--test"));
    } else {
        benches();
    }
}
