//! WAL append throughput and recovery cost: 1, 8 and 32 appender
//! threads journaling durable records through group commit versus
//! per-record sync on a `MemStorage` with a simulated device-flush
//! latency, plus cold-start recovery time against growing log sizes.
//!
//! Two modes:
//! - default: the Criterion harness (whole-round wall-clock).
//! - `--json`: measures append throughput per appender count for both
//!   sync disciplines (reporting the group-commit speedup) and recovery
//!   time per log size, writing `BENCH_wal.json` at the workspace root.
//!   Combine with `--test` for a fast smoke pass.

use criterion::{criterion_group, BenchmarkId, Criterion};
use heimdall::store::{Durability, MemStorage, Wal, WalConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Simulated device flush latency — the ballpark of a disk-backed
/// fsync. Spin-based in `MemStorage`, so the cost is exact at a scale
/// OS timers cannot hit; it is what makes batching visible: one flush
/// amortized over a batch versus one per record.
const SYNC_COST: Duration = Duration::from_micros(250);

/// A payload the size of a typical broker journal event.
const PAYLOAD: &[u8] = &[0x5a; 96];

fn wal_on(storage: &MemStorage, group_commit: bool) -> Wal {
    let cfg = WalConfig {
        durability: Durability::GroupCommitSync,
        segment_max_bytes: 1 << 20,
        group_commit,
    };
    let (wal, _) = Wal::open(Box::new(storage.clone()), cfg).expect("open empty wal");
    wal
}

/// One append round: `appenders` threads each land `per_appender`
/// durable records (`append_sync` — every return is an acknowledged,
/// crash-safe record). Returns the wall-clock for the whole round.
fn append_round(appenders: usize, per_appender: u64, group_commit: bool) -> Duration {
    let storage = MemStorage::new();
    storage.set_sync_cost(SYNC_COST);
    let wal = Arc::new(wal_on(&storage, group_commit));
    let started = Instant::now();
    let handles: Vec<_> = (0..appenders)
        .map(|_| {
            let wal = Arc::clone(&wal);
            thread::spawn(move || {
                for _ in 0..per_appender {
                    wal.append_sync(1, PAYLOAD).expect("durable append");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("appender thread");
    }
    let elapsed = started.elapsed();
    assert_eq!(wal.durable(), appenders as u64 * per_appender);
    elapsed
}

/// Builds a synced log of `records` entries and returns its storage.
fn build_log(records: u64) -> MemStorage {
    let storage = MemStorage::new();
    let wal = wal_on(&storage, true);
    for _ in 0..records {
        wal.append(1, PAYLOAD).expect("append");
    }
    wal.sync_barrier().expect("sync");
    storage
}

/// Cold-start recovery: reopen the log, re-verifying every CRC and
/// chain digest. Returns the wall-clock of `Wal::open`.
fn recover_round(storage: &MemStorage) -> Duration {
    let started = Instant::now();
    let (_, recovered) =
        Wal::open(Box::new(storage.clone()), WalConfig::default()).expect("recover");
    black_box(recovered.records.len());
    started.elapsed()
}

fn bench_wal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    group.sample_size(10);
    for &appenders in &[1usize, 8, 32] {
        for (label, group_commit) in [("group", true), ("per_record", false)] {
            group.bench_with_input(
                BenchmarkId::new(label, appenders),
                &appenders,
                |b, &appenders| b.iter(|| black_box(append_round(appenders, 32, group_commit))),
            );
        }
    }
    group.finish();
}

fn bench_wal_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_recovery");
    group.sample_size(10);
    for &records in &[1_000u64, 8_000] {
        let storage = build_log(records);
        group.bench_with_input(BenchmarkId::from_parameter(records), &records, |b, _| {
            b.iter(|| black_box(recover_round(&storage)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wal_append, bench_wal_recovery);

/// `--json` mode: append throughput per appender count under both sync
/// disciplines plus recovery time per log size, into `BENCH_wal.json`
/// at the workspace root.
fn run_json(smoke: bool) {
    // All three concurrency levels even in smoke mode: the ≥5x batching
    // win only shows at high concurrency (closed-loop appenders cap the
    // steady-state batch near N/2, so 8 appenders top out around 4x).
    let levels: &[usize] = &[1, 8, 32];
    let per_appender: u64 = if smoke { 48 } else { 128 };
    let rounds = if smoke { 1 } else { 2 };

    let mut append_entries = Vec::new();
    let mut max_speedup = 0.0f64;
    for &appenders in levels {
        let throughput = |group_commit: bool| -> f64 {
            let mut wall = Duration::ZERO;
            for _ in 0..rounds {
                wall += append_round(appenders, per_appender, group_commit);
            }
            let records = rounds as u64 * appenders as u64 * per_appender;
            records as f64 / wall.as_secs_f64().max(1e-9)
        };
        let grouped = throughput(true);
        let per_record = throughput(false);
        let speedup = grouped / per_record.max(1e-9);
        max_speedup = max_speedup.max(speedup);
        println!(
            "wal_append/{appenders}: group {grouped:.0} rec/s, per-record {per_record:.0} rec/s, speedup {speedup:.1}x"
        );
        append_entries.push(format!(
            concat!(
                "    {{\"appenders\": {}, \"records_per_round\": {}, ",
                "\"group_commit_records_per_sec\": {:.1}, ",
                "\"per_record_sync_records_per_sec\": {:.1}, ",
                "\"speedup_vs_per_record\": {:.2}}}"
            ),
            appenders,
            appenders as u64 * per_appender,
            grouped,
            per_record,
            speedup
        ));
    }
    assert!(
        max_speedup >= 5.0,
        "group commit must amortize the simulated sync at least 5x over \
         per-record sync at some concurrency (best observed: {max_speedup:.1}x)"
    );

    let sizes: &[u64] = if smoke {
        &[500, 2_000]
    } else {
        &[1_000, 8_000, 32_000]
    };
    let mut recovery_entries = Vec::new();
    for &records in sizes {
        let storage = build_log(records);
        let mut wall = Duration::ZERO;
        for _ in 0..rounds {
            wall += recover_round(&storage);
        }
        let per_open = wall / rounds as u32;
        let rate = records as f64 / per_open.as_secs_f64().max(1e-9);
        println!(
            "wal_recovery/{records}: {:.2}ms per open, {rate:.0} rec/s verified",
            per_open.as_secs_f64() * 1e3
        );
        recovery_entries.push(format!(
            concat!(
                "    {{\"records\": {}, \"recover_ms\": {:.3}, ",
                "\"verified_records_per_sec\": {:.1}}}"
            ),
            records,
            per_open.as_secs_f64() * 1e3,
            rate
        ));
    }

    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"wal\",\n  \"smoke\": {},\n",
            "  \"sync_cost_us\": {},\n",
            "  \"append\": [\n{}\n  ],\n  \"recovery\": [\n{}\n  ]\n}}\n"
        ),
        smoke,
        SYNC_COST.as_micros(),
        append_entries.join(",\n"),
        recovery_entries.join(",\n")
    );
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_wal.json");
    std::fs::write(&path, json).expect("write BENCH_wal.json");
    println!("wrote {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--json") {
        run_json(args.iter().any(|a| a == "--test"));
    } else {
        benches();
    }
}
