//! Figure 9: feasibility and attack surface on the university network.
//!
//! The full sweep covers every linked infrastructure interface; Criterion
//! timing uses a sampled sweep (stride 8) so the bench converges in
//! reasonable time, while the printed figure uses stride 2 for coverage.

use criterion::{criterion_group, criterion_main, Criterion};
use heimdall::baselines::AccessMode;
use heimdall::metrics::attack_surface;
use heimdall::nets::university;
use heimdall::privilege::derive::Task;
use std::hint::black_box;

fn bench_fig9(c: &mut Criterion) {
    let summary = heimdall::experiments::fig9(2);
    println!("\n=== Figure 9 (paper: up to ~40-point reduction vs All; feasibility ~= All) ===");
    println!("{}", heimdall::experiments::render_surface(&summary));

    let (net, _, policies) = university();
    let task = Task::connectivity("cs-h1", "www");

    let mut g = c.benchmark_group("fig9");
    for mode in [AccessMode::Neighbor, AccessMode::Heimdall] {
        let spec = mode.privileges(&net, &task);
        g.bench_function(format!("attack_surface/{}", mode.label()), |b| {
            b.iter(|| black_box(attack_surface(&net, &policies, &spec, mode.enforced())))
        });
    }
    g.bench_function("sweep/stride8", |b| {
        b.iter(|| {
            black_box(heimdall::experiments::surface_sweep(
                &net,
                &policies,
                8,
                "university",
            ))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig9
}
criterion_main!(benches);
