//! # heimdall-bench
//!
//! The benchmark harness. One Criterion bench per paper artifact:
//!
//! - `table1` — regenerates Table 1 and benchmarks network generation,
//!   convergence, and policy mining per network;
//! - `fig7` — regenerates Figure 7 (time to solve three issues, current
//!   approach vs Heimdall) and benchmarks both workflows end-to-end;
//! - `fig8` / `fig9` — regenerate Figures 8/9 (feasibility and attack
//!   surface per access mode) and benchmark the sweeps;
//! - `ablations` — the DESIGN.md §5 design-choice benches: continuous
//!   verification vs verify-at-import, naive vs dependency-aware
//!   scheduling, slicing strategies, and micro-benchmarks of the
//!   substrates (convergence, tracing, policy checking, audit chaining);
//! - `scalability` — random networks from 10 to 80 routers: convergence,
//!   mining, privilege derivation, and twin slicing as the network grows.
//!
//! Each bench *prints* the regenerated table/figure once before timing, so
//! `cargo bench` output doubles as the experiment record.

/// Re-exported so benches share one entry point.
pub use heimdall;
