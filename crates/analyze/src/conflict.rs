//! Pass 4 — conflicts: ambiguous allow/deny overlap inside one spec, and
//! pairs of specs whose concurrent edits cannot compose.
//!
//! Intra-spec: evaluation resolves an exact specificity tie in favor of
//! deny. That is safe but almost never what the author meant — the spec
//! reads as granting something it does not. Every concrete request where
//! an allow and a deny tie at the winning specificity is reported once
//! per predicate pair.
//!
//! Inter-spec: two tickets whose privileges overlap on the same mutating
//! action and device are on a collision course — whichever technician
//! commits second is rejected by the enforcer's object-level compose
//! check. Rather than re-deriving that check's semantics, this pass
//! *runs* it: build a representative change for the overlapping
//! (action, device), let one side apply it, and ask
//! `enforcer::concurrency::diff_composes` whether the other side's
//! identical edit would still land.

use crate::report::{codes, Finding, Severity};
use crate::universe::resource_universe;
use heimdall_enforcer::concurrency::diff_composes;
use heimdall_netmodel::acl::AclEntry;
use heimdall_netmodel::device::Device;
use heimdall_netmodel::diff::{ConfigChange, ConfigDiff};
use heimdall_netmodel::proto::StaticRoute;
use heimdall_netmodel::topology::Network;
use heimdall_privilege::eval::is_allowed;
use heimdall_privilege::model::{Action, Effect, Predicate, PrivilegeMsp};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Runs the intra-spec conflict pass: ambiguous allow/deny ties.
pub fn check(net: &Network, spec: &PrivilegeMsp) -> Vec<Finding> {
    let universe = resource_universe(net);
    let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut out = Vec::new();
    for r in &universe {
        for &a in &Action::ALL {
            let matching: Vec<(usize, &Predicate)> = spec
                .predicates
                .iter()
                .enumerate()
                .filter(|(_, p)| p.matches(a, r))
                .collect();
            let Some(top) = matching.iter().map(|(_, p)| p.specificity()).max() else {
                continue;
            };
            let allows: Vec<usize> = matching
                .iter()
                .filter(|(_, p)| p.specificity() == top && p.effect == Effect::Allow)
                .map(|(i, _)| *i)
                .collect();
            let denies: Vec<usize> = matching
                .iter()
                .filter(|(_, p)| p.specificity() == top && p.effect == Effect::Deny)
                .map(|(i, _)| *i)
                .collect();
            for &ai in &allows {
                for &di in &denies {
                    if !reported.insert((ai.min(di), ai.max(di))) {
                        continue;
                    }
                    out.push(Finding {
                        severity: Severity::Warning,
                        code: codes::CONFLICT_AMBIGUOUS.to_string(),
                        device: r.device().to_string(),
                        predicate: Some(ai),
                        message: format!(
                            "`{}` and `{}` tie at equal specificity on {} for {}; the tie silently resolves to deny",
                            spec.predicates[ai],
                            spec.predicates[di],
                            r,
                            a.keyword()
                        ),
                        suggestion: Some(
                            "make one predicate more specific, or delete the one that is not meant"
                                .to_string(),
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Runs the inter-spec compose check: for every device and mutating
/// action both specs allow, simulate one technician's commit and test
/// whether the other's identical edit still composes.
pub fn concurrent_overlap(net: &Network, a: &PrivilegeMsp, b: &PrivilegeMsp) -> Vec<Finding> {
    let mut out = Vec::new();
    for (_, d) in net.devices() {
        let r = heimdall_privilege::model::Resource::Device(d.name.clone());
        for &action in &Action::ALL {
            if !action.is_mutating() {
                continue;
            }
            if !(is_allowed(a, action, &r) && is_allowed(b, action, &r)) {
                continue;
            }
            let Some(change) = representative_change(d, action) else {
                continue;
            };
            let diff = ConfigDiff {
                changes: vec![change],
            };
            let mut current = net.clone();
            if diff.apply_to_network(&mut current).is_err() {
                continue;
            }
            if !diff_composes(net, &current, &diff) {
                out.push(Finding {
                    severity: Severity::Warning,
                    code: codes::CONCURRENT_OVERLAP.to_string(),
                    device: d.name.clone(),
                    predicate: None,
                    message: format!(
                        "both specs allow {} on {}: same-object edits race, and the loser's commit is rejected by the compose check",
                        action.keyword(),
                        d.name
                    ),
                    suggestion: Some(
                        "partition the device between the tickets, or serialize them".to_string(),
                    ),
                });
            }
        }
    }
    out
}

/// A smallest concrete edit of the object class `action` governs on this
/// device, or `None` when the device has no such object to touch.
fn representative_change(d: &Device, action: Action) -> Option<ConfigChange> {
    let device = d.name.clone();
    match action {
        Action::ModifyInterfaceState => {
            d.config
                .interfaces
                .first()
                .map(|i| ConfigChange::SetInterfaceEnabled {
                    device,
                    iface: i.name.clone(),
                    enabled: !i.is_up(),
                })
        }
        Action::ModifyIpAddress => d
            .config
            .interfaces
            .iter()
            .find(|i| i.address.is_some())
            .map(|i| ConfigChange::SetInterfaceAddress {
                device,
                iface: i.name.clone(),
                address: None,
            }),
        Action::ModifyAcl => {
            // Edit the first defined ACL; on a device with none, both
            // technicians would be creating the same fresh list.
            let (name, entries) = d
                .config
                .acls
                .iter()
                .next()
                .map(|(n, acl)| {
                    let mut e = acl.entries.clone();
                    e.push(AclEntry::deny_any());
                    (n.clone(), e)
                })
                .unwrap_or_else(|| ("199".to_string(), vec![AclEntry::deny_any()]));
            Some(ConfigChange::ReplaceAcl {
                device,
                name,
                entries,
            })
        }
        Action::ModifyRoute => Some(ConfigChange::AddStaticRoute {
            device,
            route: StaticRoute::default_via(Ipv4Addr::new(192, 0, 2, 77)),
        }),
        Action::ModifyOspf => d
            .config
            .ospf
            .is_some()
            .then_some(ConfigChange::SetOspf { device, ospf: None }),
        Action::ModifyBgp => d
            .config
            .bgp
            .is_some()
            .then_some(ConfigChange::SetBgp { device, bgp: None }),
        Action::ModifyVlan => d
            .config
            .vlans
            .keys()
            .next()
            .map(|&vlan| ConfigChange::RemoveVlan { device, vlan }),
        // Read-only actions produce no diff; destructive ones are not
        // config-diff shaped (and are flagged by the other passes).
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::gen::enterprise_network;
    use heimdall_privilege::derive::{derive_privileges, Task, TaskKind};
    use heimdall_privilege::model::ResourcePattern;

    fn dev(d: &str) -> ResourcePattern {
        ResourcePattern::Device(d.to_string())
    }

    #[test]
    fn equal_specificity_tie_is_ambiguous() {
        let g = enterprise_network();
        let spec = PrivilegeMsp::new()
            .with(Predicate::allow(Action::Reboot, dev("fw1")))
            .with(Predicate::deny(Action::Reboot, dev("fw1")));
        let findings = check(&g.net, &spec);
        assert_eq!(findings.len(), 1, "one pair, reported once: {findings:?}");
        assert_eq!(findings[0].code, codes::CONFLICT_AMBIGUOUS);
        assert_eq!(findings[0].device, "fw1");
    }

    #[test]
    fn piercing_deny_is_not_ambiguous() {
        let g = enterprise_network();
        // deny(erase, fw1) is *more specific* than allow(*, fw1): clean.
        let spec = PrivilegeMsp::new()
            .with(Predicate::allow_all(dev("fw1")))
            .with(Predicate::deny(Action::Erase, dev("fw1")));
        assert!(check(&g.net, &spec).is_empty());
    }

    #[test]
    fn overlapping_tickets_cannot_compose() {
        let g = enterprise_network();
        // Two ACL tickets over the same slice: both hold acl on fw1.
        let task = Task {
            kind: TaskKind::AccessControl,
            affected: vec!["h4".to_string(), "srv1".to_string()],
        };
        let spec_a = derive_privileges(&g.net, &task);
        let spec_b = spec_a.clone();
        let findings = concurrent_overlap(&g.net, &spec_a, &spec_b);
        assert!(
            findings
                .iter()
                .any(|f| f.code == codes::CONCURRENT_OVERLAP && f.device == "fw1"),
            "{findings:?}"
        );
    }

    #[test]
    fn disjoint_tickets_compose() {
        let g = enterprise_network();
        let a = derive_privileges(&g.net, &Task::connectivity("h1", "h2"));
        let b = derive_privileges(
            &g.net,
            &Task {
                kind: TaskKind::IspChange,
                affected: vec!["bdr1".to_string()],
            },
        );
        // h1<->h2 stays inside the access layer; bdr1 is the border.
        let findings = concurrent_overlap(&g.net, &a, &b);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn representative_changes_do_not_compose_with_themselves() {
        // Sanity for the simulation: every representative change actually
        // moves the object it targets, so apply-then-compose detects it.
        let g = enterprise_network();
        for (_, d) in g.net.devices() {
            for &action in &Action::ALL {
                let Some(change) = representative_change(d, action) else {
                    continue;
                };
                let diff = ConfigDiff {
                    changes: vec![change],
                };
                let mut current = g.net.clone();
                diff.apply_to_network(&mut current).unwrap();
                assert!(
                    !diff_composes(&g.net, &current, &diff),
                    "{}: {action:?} representative is a no-op",
                    d.name
                );
            }
        }
    }
}
