//! Pass 2 — over-grant against the derived minimum.
//!
//! `privilege::derive` already computes the least privilege a task needs
//! (view+ping on the relevant slice, the kind's mutating actions on its
//! non-host members). Anything a hand-written spec allows beyond that is
//! surplus attack surface — the paper's Figure 3 accident is exactly a
//! technician holding `erase` they never needed. This pass reports the
//! granted−needed delta per device and, when the surplus flows from a
//! wildcard, suggests the concrete minimization
//! (`allow(*, fw1)` → `allow(view, fw1), allow(ping, fw1), ...`).

use crate::report::{codes, pattern_device, Finding, Severity};
use heimdall_netmodel::topology::Network;
use heimdall_privilege::derive::{derive_privileges, Task};
use heimdall_privilege::eval::{evaluate, is_allowed, Decision};
use heimdall_privilege::model::{Action, Effect, PrivilegeMsp, Resource, ResourcePattern};

/// Actions no task kind ever derives; granting one is always an error.
pub const DESTRUCTIVE: [Action; 3] = [Action::ModifyCredentials, Action::Reboot, Action::Erase];

/// Runs the over-grant pass: `spec` is compared against the minimal
/// privilege derived for `task` on `net`.
pub fn check(net: &Network, task: &Task, spec: &PrivilegeMsp) -> Vec<Finding> {
    let minimal = derive_privileges(net, task);
    let mut out = Vec::new();
    for (_, d) in net.devices() {
        let r = Resource::Device(d.name.clone());
        let extra: Vec<Action> = Action::ALL
            .iter()
            .copied()
            .filter(|&a| is_allowed(spec, a, &r) && !is_allowed(&minimal, a, &r))
            .collect();
        if extra.is_empty() {
            continue;
        }
        let needed: Vec<&'static str> = Action::ALL
            .iter()
            .filter(|&&a| is_allowed(&minimal, a, &r))
            .map(Action::keyword)
            .collect();
        let extra_kw: Vec<&'static str> = extra.iter().map(Action::keyword).collect();
        out.push(Finding {
            severity: Severity::Warning,
            code: codes::OVER_GRANT.to_string(),
            device: d.name.clone(),
            predicate: None,
            message: format!(
                "grants [{}] on {} beyond the minimum a {:?} task needs",
                extra_kw.join(", "),
                d.name,
                task.kind
            ),
            suggestion: Some(if needed.is_empty() {
                format!(
                    "the task needs nothing on {}; drop it from the spec",
                    d.name
                )
            } else {
                format!(
                    "narrow to the derived minimum: {}",
                    needed
                        .iter()
                        .map(|k| format!("allow({k}, {})", d.name))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }),
        });
        let destructive: Vec<Action> = extra
            .iter()
            .copied()
            .filter(|a| DESTRUCTIVE.contains(a))
            .collect();
        if let Some(&first) = destructive.first() {
            let cited = match evaluate(spec, first, &r) {
                Decision::Allowed { by } => Some(by),
                _ => None,
            };
            out.push(Finding {
                severity: Severity::Error,
                code: codes::OVER_GRANT_DESTRUCTIVE.to_string(),
                device: d.name.clone(),
                predicate: cited,
                message: format!(
                    "destructive actions [{}] are granted on {}; no task kind ever derives them",
                    destructive
                        .iter()
                        .map(Action::keyword)
                        .collect::<Vec<_>>()
                        .join(", "),
                    d.name
                ),
                suggestion: Some(
                    "destructive actions must stay admin-only; deny them explicitly".to_string(),
                ),
            });
        }
    }
    out.extend(wildcard_minimization(net, &minimal, task, spec));
    out
}

/// Flags wildcard predicates whose breadth is the source of an over-grant
/// and computes the narrowed replacement.
fn wildcard_minimization(
    net: &Network,
    minimal: &PrivilegeMsp,
    task: &Task,
    spec: &PrivilegeMsp,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, p) in spec.predicates.iter().enumerate() {
        if p.effect != Effect::Allow {
            continue;
        }
        if p.action.is_some() && !matches!(p.resource, ResourcePattern::Any) {
            continue;
        }
        let mut surplus = false;
        let mut kept: Vec<String> = Vec::new();
        for (_, d) in net.devices() {
            let r = Resource::Device(d.name.clone());
            for &a in &Action::ALL {
                if !p.matches(a, &r) {
                    continue;
                }
                if is_allowed(minimal, a, &r) {
                    kept.push(format!("allow({}, {})", a.keyword(), d.name));
                } else {
                    surplus = true;
                }
            }
        }
        if !surplus {
            continue;
        }
        let replacement = if kept.is_empty() {
            format!(
                "`{p}` grants nothing the {:?} task needs; remove it",
                task.kind
            )
        } else {
            let shown = kept.len().min(4);
            let mut text = kept[..shown].join(", ");
            if kept.len() > shown {
                text.push_str(&format!(" ... ({} more)", kept.len() - shown));
            }
            format!("`{p}` -> {text}")
        };
        out.push(Finding {
            severity: Severity::Info,
            code: codes::WILDCARD_BROAD.to_string(),
            device: pattern_device(p),
            predicate: Some(i),
            message: format!(
                "wildcard `{p}` grants more than the {:?} task's derived minimum",
                task.kind
            ),
            suggestion: Some(replacement),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::gen::enterprise_network;
    use heimdall_privilege::model::Predicate;

    fn acl_task() -> Task {
        Task {
            kind: heimdall_privilege::derive::TaskKind::AccessControl,
            affected: vec!["h4".to_string(), "srv1".to_string()],
        }
    }

    #[test]
    fn derived_spec_is_never_over_granted() {
        let g = enterprise_network();
        let task = acl_task();
        let spec = derive_privileges(&g.net, &task);
        assert!(check(&g.net, &task, &spec).is_empty());
    }

    #[test]
    fn wildcard_over_grant_is_flagged_with_minimization() {
        let g = enterprise_network();
        let task = acl_task();
        let spec = PrivilegeMsp::new().with(Predicate::allow_all(ResourcePattern::Device(
            "fw1".to_string(),
        )));
        let findings = check(&g.net, &task, &spec);
        let over: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.code == codes::OVER_GRANT)
            .collect();
        assert_eq!(over.len(), 1, "{findings:?}");
        assert_eq!(over[0].device, "fw1");
        // The suggestion names the derived minimum.
        let sugg = over[0].suggestion.as_deref().unwrap();
        assert!(sugg.contains("allow(view, fw1)"), "{sugg}");
        assert!(sugg.contains("allow(acl, fw1)"), "{sugg}");
        // The wildcard is cited as the source, with a narrowing.
        let broad = findings
            .iter()
            .find(|f| f.code == codes::WILDCARD_BROAD)
            .expect("wildcard finding");
        assert_eq!(broad.predicate, Some(0));
        assert!(
            broad
                .suggestion
                .as_deref()
                .unwrap()
                .contains("allow(view, fw1)"),
            "{:?}",
            broad.suggestion
        );
    }

    #[test]
    fn wildcard_reaching_destructive_is_an_error() {
        let g = enterprise_network();
        let task = acl_task();
        let spec = PrivilegeMsp::new().with(Predicate::allow_all(ResourcePattern::Device(
            "fw1".to_string(),
        )));
        let findings = check(&g.net, &task, &spec);
        let destr = findings
            .iter()
            .find(|f| f.code == codes::OVER_GRANT_DESTRUCTIVE)
            .expect("destructive finding");
        assert_eq!(destr.severity, Severity::Error);
        assert_eq!(destr.device, "fw1");
        assert_eq!(destr.predicate, Some(0), "cites the wildcard");
        assert!(destr.message.contains("erase"), "{}", destr.message);
    }

    #[test]
    fn exact_surplus_action_is_named() {
        let g = enterprise_network();
        let task = acl_task();
        // Minimal plus one stray ospf grant.
        let spec = derive_privileges(&g.net, &task).with(Predicate::allow(
            Action::ModifyOspf,
            ResourcePattern::Device("fw1".to_string()),
        ));
        let findings = check(&g.net, &task, &spec);
        let over = findings
            .iter()
            .find(|f| f.code == codes::OVER_GRANT)
            .expect("over-grant finding");
        assert_eq!(over.device, "fw1");
        assert!(over.message.contains("[ospf]"), "{}", over.message);
        assert!(!findings.iter().any(|f| f.severity == Severity::Error));
    }

    #[test]
    fn off_slice_grant_suggests_dropping_the_device() {
        let g = enterprise_network();
        let task = acl_task();
        // acc3 is off the h4<->srv1 slice entirely.
        let spec = derive_privileges(&g.net, &task).with(Predicate::allow(
            Action::View,
            ResourcePattern::Device("acc3".to_string()),
        ));
        let findings = check(&g.net, &task, &spec);
        let over = findings
            .iter()
            .find(|f| f.code == codes::OVER_GRANT && f.device == "acc3")
            .expect("acc3 over-grant");
        assert!(
            over.suggestion.as_deref().unwrap().contains("drop it"),
            "{:?}",
            over.suggestion
        );
    }
}
