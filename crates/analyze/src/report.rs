//! Structured diagnostics: findings with stable codes, sorted reports.
//!
//! The shape deliberately mirrors `heimdall_netmodel::lint` — admins read
//! config lint and privilege analysis side by side — and reuses its
//! [`Severity`] so one deny/warn threshold covers both.

use heimdall_privilege::model::{Predicate, ResourcePattern};
use serde::{Deserialize, Serialize};
use std::fmt;

pub use heimdall_netmodel::lint::Severity;

/// Stable diagnostic codes, one per defect class. Tests and CI gates match
/// on these by name; never renumber or reuse them.
pub mod codes {
    /// Predicate removable without changing any decision on this network.
    pub const SHADOWED: &str = "priv-shadowed";
    /// Predicate references a device/interface/ACL the network lacks.
    pub const UNKNOWN_RESOURCE: &str = "priv-unknown-resource";
    /// Grants on a device exceed the task's derived minimum.
    pub const OVER_GRANT: &str = "priv-over-grant";
    /// The excess includes a destructive action no task kind ever derives.
    pub const OVER_GRANT_DESTRUCTIVE: &str = "priv-over-grant-destructive";
    /// A wildcard predicate is the source of an over-grant.
    pub const WILDCARD_BROAD: &str = "priv-wildcard-broad";
    /// Allow and deny tie at equal specificity for some concrete request.
    pub const CONFLICT_AMBIGUOUS: &str = "priv-conflict-ambiguous";
    /// Two specs allow the same mutating action on the same device and
    /// the resulting edits cannot compose.
    pub const CONCURRENT_OVERLAP: &str = "priv-concurrent-overlap";
    /// A destructive action is reachable without admin approval.
    pub const ESCALATION_DESTRUCTIVE: &str = "priv-escalation-destructive";
    /// Self-service escalation can widen the spec beyond its grants.
    pub const ESCALATION_WIDEN: &str = "priv-escalation-widen";
    /// The escalation-widened grant set spans many devices.
    pub const ESCALATION_BLAST_RADIUS: &str = "priv-escalation-blast-radius";
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    pub severity: Severity,
    /// One of the [`codes`] constants (owned so reports deserialize off
    /// the wire).
    pub code: String,
    /// Device the finding is anchored to, or `"*"` for spec-wide ones.
    pub device: String,
    /// Index of the predicate at fault, when one can be cited.
    pub predicate: Option<usize>,
    pub message: String,
    /// Concrete remediation, when the analyzer can compute one.
    pub suggestion: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}] {} {}", self.severity, self.code, self.device)?;
        if let Some(i) = self.predicate {
            write!(f, " #{i}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n    fix: {s}")?;
        }
        Ok(())
    }
}

/// A complete analysis report: findings sorted by (severity descending,
/// device, code, message) and deduplicated, so identical inputs always
/// render identically.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisReport {
    pub findings: Vec<Finding>,
}

impl AnalysisReport {
    /// Builds a report with the canonical ordering applied.
    pub fn from_findings(mut findings: Vec<Finding>) -> AnalysisReport {
        findings.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.device.cmp(&b.device))
                .then_with(|| a.code.cmp(&b.code))
                .then_with(|| a.message.cmp(&b.message))
        });
        findings.dedup();
        AnalysisReport { findings }
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The worst severity present, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Number of findings at or above `min`.
    pub fn count_at_least(&self, min: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity >= min).count()
    }

    /// Whether any finding carries the given code.
    pub fn has_code(&self, code: &str) -> bool {
        self.findings.iter().any(|f| f.code == code)
    }

    /// All findings carrying the given code.
    pub fn with_code(&self, code: &str) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.code == code).collect()
    }

    /// One-line summary, e.g. `4 findings (1 error, 2 warnings, 1 info)`.
    pub fn summary(&self) -> String {
        if self.findings.is_empty() {
            return "clean".to_string();
        }
        let count = |s: Severity| self.findings.iter().filter(|f| f.severity == s).count();
        format!(
            "{} findings ({} errors, {} warnings, {} info)",
            self.findings.len(),
            count(Severity::Error),
            count(Severity::Warning),
            count(Severity::Info),
        )
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        Ok(())
    }
}

/// The device a predicate's resource pattern is anchored to (`"*"` for
/// `Any`).
pub(crate) fn pattern_device(p: &Predicate) -> String {
    match &p.resource {
        ResourcePattern::Any => "*".to_string(),
        ResourcePattern::Device(d) => d.clone(),
        ResourcePattern::Interface { device, .. } | ResourcePattern::Acl { device, .. } => {
            device.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(sev: Severity, code: &str, device: &str, msg: &str) -> Finding {
        Finding {
            severity: sev,
            code: code.to_string(),
            device: device.to_string(),
            predicate: None,
            message: msg.to_string(),
            suggestion: None,
        }
    }

    #[test]
    fn report_sorts_and_dedupes() {
        let report = AnalysisReport::from_findings(vec![
            finding(Severity::Info, codes::WILDCARD_BROAD, "z9", "a"),
            finding(Severity::Error, codes::OVER_GRANT_DESTRUCTIVE, "fw1", "b"),
            finding(Severity::Error, codes::OVER_GRANT_DESTRUCTIVE, "fw1", "b"),
            finding(Severity::Warning, codes::OVER_GRANT, "acc1", "c"),
        ]);
        assert_eq!(report.findings.len(), 3, "duplicate removed");
        assert_eq!(report.findings[0].severity, Severity::Error);
        assert_eq!(report.max_severity(), Some(Severity::Error));
        assert_eq!(report.count_at_least(Severity::Warning), 2);
        assert!(report.has_code(codes::OVER_GRANT));
        assert!(!report.has_code(codes::SHADOWED));
    }

    #[test]
    fn summary_counts_by_severity() {
        assert_eq!(AnalysisReport::default().summary(), "clean");
        let report = AnalysisReport::from_findings(vec![
            finding(Severity::Error, codes::ESCALATION_DESTRUCTIVE, "fw1", "x"),
            finding(Severity::Info, codes::ESCALATION_WIDEN, "*", "y"),
        ]);
        assert_eq!(
            report.summary(),
            "2 findings (1 errors, 0 warnings, 1 info)"
        );
    }

    #[test]
    fn findings_serialize_round_trip() {
        let report = AnalysisReport::from_findings(vec![Finding {
            severity: Severity::Warning,
            code: codes::SHADOWED.to_string(),
            device: "fw1".to_string(),
            predicate: Some(3),
            message: "m".to_string(),
            suggestion: Some("s".to_string()),
        }]);
        let json = serde_json::to_string(&report).unwrap();
        let back: AnalysisReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn display_cites_predicate_and_fix() {
        let f = Finding {
            severity: Severity::Warning,
            code: codes::SHADOWED.to_string(),
            device: "fw1".to_string(),
            predicate: Some(2),
            message: "shadowed".to_string(),
            suggestion: Some("delete it".to_string()),
        };
        let text = f.to_string();
        assert!(text.contains("priv-shadowed fw1 #2"), "{text}");
        assert!(text.contains("fix: delete it"), "{text}");
    }
}
