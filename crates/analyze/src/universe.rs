//! The concrete resource universe of a network: every `Resource` a
//! predicate could ever be asked about. Pattern semantics are *defined*
//! by `ResourcePattern::matches`; enumerating the universe lets the
//! passes decide questions like "does this predicate match anything?"
//! or "are these two predicates distinguishable?" by exhaustion instead
//! of by re-implementing the matcher.

use heimdall_netmodel::topology::Network;
use heimdall_privilege::model::Resource;

/// Every concrete resource in the network: one `Device` per device, one
/// `Interface` per configured interface, one `Acl` per defined ACL.
/// Deterministic: devices in insertion order, interfaces in config order,
/// ACLs in `BTreeMap` order.
pub fn resource_universe(net: &Network) -> Vec<Resource> {
    let mut out = Vec::new();
    for (_, d) in net.devices() {
        out.push(Resource::Device(d.name.clone()));
        for i in &d.config.interfaces {
            out.push(Resource::Interface {
                device: d.name.clone(),
                iface: i.name.clone(),
            });
        }
        for name in d.config.acls.keys() {
            out.push(Resource::Acl {
                device: d.name.clone(),
                name: name.clone(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::gen::enterprise_network;

    #[test]
    fn universe_covers_devices_interfaces_and_acls() {
        let g = enterprise_network();
        let universe = resource_universe(&g.net);
        assert!(universe.contains(&Resource::Device("fw1".to_string())));
        assert!(
            universe
                .iter()
                .any(|r| matches!(r, Resource::Interface { device, .. } if device == "fw1")),
            "fw1 interfaces present"
        );
        assert!(
            universe
                .iter()
                .any(|r| matches!(r, Resource::Acl { device, .. } if device == "fw1")),
            "fw1 ACLs present"
        );
        let device_entries = universe
            .iter()
            .filter(|r| matches!(r, Resource::Device(_)))
            .count();
        assert_eq!(device_entries, g.net.device_count());
        // Deterministic across calls.
        assert_eq!(resource_universe(&g.net), universe);
    }
}
