//! Pass 1 — shadowed and unreachable predicates.
//!
//! A predicate earns its place in a `Privilege_msp` by changing at least
//! one decision. Two ways it can fail to:
//!
//! - **unreachable**: its resource pattern matches nothing the network
//!   actually has (typo'd device name, ACL that was deleted, interface
//!   that never existed) — the grant is dead text;
//! - **shadowed**: it matches real resources, but the other predicates
//!   already force the same outcome everywhere (a broad wildcard drowns a
//!   specific allow, a duplicate line, an allow neutralized by an
//!   equal-specificity deny).
//!
//! Shadowing is decided semantically — remove the predicate and compare
//! every decision over the concrete universe — not syntactically, so it
//! is exact for the network at hand.

use crate::report::{codes, pattern_device, Finding, Severity};
use crate::universe::resource_universe;
use heimdall_netmodel::topology::Network;
use heimdall_privilege::model::{Action, Effect, PrivilegeMsp};

/// The winning effect over one (resource, action) cell's matching
/// predicates under the shared evaluation rules: most specific wins,
/// deny beats allow on an exact tie, deny by default. The predicate
/// *index* cannot change the boolean outcome, so it is not tracked.
fn winner(matches: &[(usize, (u8, u8), Effect)], skip: Option<usize>) -> bool {
    let mut best: Option<((u8, u8), Effect)> = None;
    for &(i, s, e) in matches {
        if Some(i) == skip {
            continue;
        }
        match &mut best {
            None => best = Some((s, e)),
            Some((bs, be)) => {
                if s > *bs || (s == *bs && e == Effect::Deny) {
                    *bs = s;
                    *be = e;
                }
            }
        }
    }
    matches!(best, Some((_, Effect::Allow)))
}

/// Runs the shadow/unreachable pass.
///
/// Decisions only change where the removed predicate matches, so each
/// (resource, action) cell is materialized once — the per-cell match
/// list — and every predicate's counterfactual is answered from that
/// list, instead of re-evaluating the whole spec per predicate.
pub fn check(net: &Network, spec: &PrivilegeMsp) -> Vec<Finding> {
    let universe = resource_universe(net);
    let n = spec.predicates.len();
    let mut matches_any = vec![false; n];
    let mut changes_decision = vec![false; n];
    let mut cell: Vec<(usize, (u8, u8), Effect)> = Vec::with_capacity(n);
    for r in &universe {
        for &a in &Action::ALL {
            cell.clear();
            cell.extend(
                spec.predicates
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.matches(a, r))
                    .map(|(i, p)| (i, p.specificity(), p.effect)),
            );
            if cell.is_empty() {
                continue;
            }
            let with = winner(&cell, None);
            for &(i, _, _) in &cell {
                matches_any[i] = true;
                if !changes_decision[i] && with != winner(&cell, Some(i)) {
                    changes_decision[i] = true;
                }
            }
        }
    }
    let mut out = Vec::new();
    for (i, p) in spec.predicates.iter().enumerate() {
        if !matches_any[i] {
            out.push(Finding {
                severity: Severity::Warning,
                code: codes::UNKNOWN_RESOURCE.to_string(),
                device: pattern_device(p),
                predicate: Some(i),
                message: format!("`{p}` matches no resource in the network; the predicate is dead"),
                suggestion: Some(
                    "remove it, or fix the device/interface/ACL name it refers to".to_string(),
                ),
            });
        } else if !changes_decision[i] {
            out.push(Finding {
                severity: Severity::Warning,
                code: codes::SHADOWED.to_string(),
                device: pattern_device(p),
                predicate: Some(i),
                message: format!(
                    "`{p}` is shadowed: removing it changes no decision on this network"
                ),
                suggestion: Some(
                    "delete it, or narrow the broader predicate that subsumes it".to_string(),
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::gen::enterprise_network;
    use heimdall_privilege::model::{Predicate, ResourcePattern};

    fn dev(d: &str) -> ResourcePattern {
        ResourcePattern::Device(d.to_string())
    }

    #[test]
    fn specific_allow_under_wildcard_is_shadowed() {
        let g = enterprise_network();
        // allow(*, fw1) already allows view on fw1; the narrow grant is noise.
        let spec = PrivilegeMsp::new()
            .with(Predicate::allow_all(dev("fw1")))
            .with(Predicate::allow(Action::View, dev("fw1")));
        let findings = check(&g.net, &spec);
        let shadowed: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.code == codes::SHADOWED)
            .collect();
        assert_eq!(shadowed.len(), 1, "{findings:?}");
        assert_eq!(shadowed[0].predicate, Some(1));
        assert_eq!(shadowed[0].device, "fw1");
    }

    #[test]
    fn duplicate_predicates_are_both_shadowed() {
        let g = enterprise_network();
        let spec = PrivilegeMsp::new()
            .with(Predicate::allow(Action::View, dev("fw1")))
            .with(Predicate::allow(Action::View, dev("fw1")));
        let findings = check(&g.net, &spec);
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.code == codes::SHADOWED)
                .count(),
            2,
            "{findings:?}"
        );
    }

    #[test]
    fn ghost_device_is_unreachable_not_shadowed() {
        let g = enterprise_network();
        let spec = PrivilegeMsp::new().with(Predicate::allow(Action::View, dev("ghost")));
        let findings = check(&g.net, &spec);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code, codes::UNKNOWN_RESOURCE);
        assert_eq!(findings[0].device, "ghost");
    }

    #[test]
    fn missing_interface_and_acl_are_unreachable() {
        let g = enterprise_network();
        let spec = PrivilegeMsp::new()
            .with(Predicate::allow(
                Action::ModifyInterfaceState,
                ResourcePattern::Interface {
                    device: "fw1".to_string(),
                    iface: "Gi9/9".to_string(),
                },
            ))
            .with(Predicate::allow(
                Action::ModifyAcl,
                ResourcePattern::Acl {
                    device: "fw1".to_string(),
                    name: "404".to_string(),
                },
            ));
        let findings = check(&g.net, &spec);
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.code == codes::UNKNOWN_RESOURCE)
                .count(),
            2,
            "{findings:?}"
        );
    }

    #[test]
    fn effective_predicates_are_clean() {
        let g = enterprise_network();
        // Wildcard plus a *piercing* deny: both change decisions.
        let spec = PrivilegeMsp::new()
            .with(Predicate::allow_all(dev("fw1")))
            .with(Predicate::deny(Action::Erase, dev("fw1")));
        assert!(check(&g.net, &spec).is_empty());
    }

    #[test]
    fn derived_specs_have_no_shadowed_predicates() {
        use heimdall_privilege::derive::{derive_privileges, Task};
        let g = enterprise_network();
        let spec = derive_privileges(&g.net, &Task::connectivity("h1", "srv1"));
        assert!(check(&g.net, &spec).is_empty());
    }
}
