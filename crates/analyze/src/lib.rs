//! # heimdall-analyze
//!
//! Static least-privilege analysis of `Privilege_msp` specifications —
//! the admin-side answer to "is this spec actually minimal, and what
//! could a technician ultimately reach?", asked *before* any privilege
//! is exercised.
//!
//! Where `netmodel::lint` statically checks device configurations, this
//! crate statically checks privilege specifications against a network.
//! Four passes, each with stable diagnostic codes (see
//! [`report::codes`]):
//!
//! | pass | codes | catches |
//! |------|-------|---------|
//! | [`shadow`] | `priv-shadowed`, `priv-unknown-resource` | dead predicates |
//! | [`overgrant`] | `priv-over-grant`, `priv-over-grant-destructive`, `priv-wildcard-broad` | surplus over the derived minimum |
//! | [`escalation`] | `priv-escalation-widen`, `priv-escalation-blast-radius`, `priv-escalation-destructive` | what §7 self-service escalation reaches |
//! | [`conflict`] | `priv-conflict-ambiguous`, `priv-concurrent-overlap` | allow/deny ties; specs that cannot commit concurrently |
//!
//! The broker runs [`analyze`] at privilege-derivation time and can deny
//! session opens above a configured severity; the same report is served
//! over the wire via the service's `AnalyzeQuery` frame.
//!
//! ```
//! use heimdall_analyze::{analyze, codes};
//! use heimdall_netmodel::gen::enterprise_network;
//! use heimdall_privilege::derive::{Task, TaskKind};
//! use heimdall_privilege::dsl;
//!
//! let g = enterprise_network();
//! let task = Task { kind: TaskKind::AccessControl,
//!                   affected: vec!["h4".into(), "srv1".into()] };
//! // A hand-written spec with a lazy wildcard.
//! let spec = dsl::parse("allow(*, fw1)\n").unwrap();
//! let report = analyze(&g.net, &task, &spec);
//! // The wildcard over-grants — all the way to `erase` — and the
//! // analyzer says exactly how to narrow it.
//! assert!(report.has_code(codes::OVER_GRANT));
//! assert!(report.has_code(codes::ESCALATION_DESTRUCTIVE));
//! let fix = report.with_code(codes::OVER_GRANT)[0].suggestion.clone().unwrap();
//! assert!(fix.contains("allow(acl, fw1)"));
//! ```

pub mod conflict;
pub mod escalation;
pub mod overgrant;
pub mod report;
pub mod shadow;
pub mod universe;

pub use escalation::{escalation_closure, EscalationClosure};
pub use report::{codes, AnalysisReport, Finding, Severity};

use heimdall_netmodel::topology::Network;
use heimdall_privilege::derive::Task;
use heimdall_privilege::model::PrivilegeMsp;

/// Runs every single-spec pass — shadow/unreachable, over-grant,
/// escalation-reachability, intra-spec conflict — and returns the
/// canonically sorted report.
pub fn analyze(net: &Network, task: &Task, spec: &PrivilegeMsp) -> AnalysisReport {
    let mut findings = Vec::new();
    findings.extend(shadow::check(net, spec));
    findings.extend(overgrant::check(net, task, spec));
    findings.extend(escalation::check(net, task, spec));
    findings.extend(conflict::check(net, spec));
    AnalysisReport::from_findings(findings)
}

/// Runs the pairwise compose check between two specs (two concurrent
/// tickets): reports every device where both may mutate the same object
/// class and the enforcer's compose check would reject the second commit.
pub fn analyze_pair(net: &Network, a: &PrivilegeMsp, b: &PrivilegeMsp) -> AnalysisReport {
    AnalysisReport::from_findings(conflict::concurrent_overlap(net, a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::gen::enterprise_network;
    use heimdall_privilege::derive::{derive_privileges, TaskKind};
    use heimdall_privilege::dsl;

    #[test]
    fn derived_specs_never_reach_the_error_gate() {
        let g = enterprise_network();
        for task in [
            Task::connectivity("h1", "srv1"),
            Task {
                kind: TaskKind::AccessControl,
                affected: vec!["h4".to_string(), "srv1".to_string()],
            },
            Task {
                kind: TaskKind::IspChange,
                affected: vec!["bdr1".to_string()],
            },
            Task {
                kind: TaskKind::Monitoring,
                affected: vec!["core1".to_string(), "core2".to_string()],
            },
        ] {
            let spec = derive_privileges(&g.net, &task);
            let report = analyze(&g.net, &task, &spec);
            assert!(
                report.max_severity() < Some(Severity::Error),
                "{task:?}: {report}"
            );
        }
    }

    #[test]
    fn the_three_seeded_defect_classes_are_detected() {
        let g = enterprise_network();
        let task = Task {
            kind: TaskKind::AccessControl,
            affected: vec!["h4".to_string(), "srv1".to_string()],
        };
        // Seeded defects: a wildcard over-grant (which also makes erase
        // reachable) and a predicate shadowed by the wildcard.
        let spec = dsl::parse("allow(*, fw1)\nallow(view, fw1)\n").unwrap();
        let report = analyze(&g.net, &task, &spec);
        assert!(report.has_code(codes::SHADOWED), "{report}");
        assert!(report.has_code(codes::OVER_GRANT), "{report}");
        assert!(report.has_code(codes::ESCALATION_DESTRUCTIVE), "{report}");
        assert_eq!(report.max_severity(), Some(Severity::Error));
    }

    #[test]
    fn report_is_deterministic() {
        let g = enterprise_network();
        let task = Task::connectivity("h4", "srv1");
        let spec = dsl::parse("allow(*, fw1)\nallow(view, ghost)\n").unwrap();
        let first = analyze(&g.net, &task, &spec);
        for _ in 0..4 {
            assert_eq!(analyze(&g.net, &task, &spec), first);
        }
    }
}
