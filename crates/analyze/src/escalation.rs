//! Pass 3 — escalation reachability.
//!
//! The §7 workflow lets a technician widen their own privilege at runtime:
//! `escalate::decide_escalation` auto-grants any non-destructive action
//! that is plausible for the task kind (its own mutating repertoire plus
//! the `related_kinds` table) on any device in the task's relevance set.
//! The admin therefore authorizes not the spec they signed but its
//! *closure* under those rules. This pass computes that closure — the
//! transitive closure over the `related_kinds` graph times the relevant
//! device set — and reports:
//!
//! - how far self-service escalation can widen the spec (`Info`),
//! - widened grant sets spanning many devices (blast radius, `Warning`),
//! - destructive actions reachable without an admin (`Error`). Auto-grant
//!   never adds those, so any such reachability flows from the spec's own
//!   predicates — typically an unnoticed wildcard — and the offending
//!   predicate is cited.
//!
//! The closure is a sound over-approximation of `decide_escalation`:
//! anything outside it is guaranteed `NeedsAdmin`/`Denied` (property-
//! tested in `tests/analyze_e2e.rs`).

use crate::report::{codes, Finding, Severity};
use heimdall_netmodel::topology::Network;
use heimdall_privilege::derive::{relevant_devices, Task, TaskKind};
use heimdall_privilege::escalate::related_kinds;
use heimdall_privilege::eval::{evaluate, is_allowed, Decision};
use heimdall_privilege::model::{Action, PrivilegeMsp, Resource};
use std::collections::BTreeSet;

use crate::overgrant::DESTRUCTIVE;

/// Everything a technician could reach from `task` without admin
/// approval, independent of any particular spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EscalationClosure {
    /// Task kinds reachable through the `related_kinds` graph, starting
    /// kind first (BFS order).
    pub kinds: Vec<TaskKind>,
    /// Names of the devices in the task's relevance set — escalation
    /// never grants outside it.
    pub devices: Vec<String>,
    /// Every (action, device) pair the auto-grant path could add.
    pub auto_grantable: BTreeSet<(Action, String)>,
}

impl EscalationClosure {
    /// Whether the auto-grant path could ever yield `action` on `device`.
    pub fn reaches(&self, action: Action, device: &str) -> bool {
        self.auto_grantable.contains(&(action, device.to_string()))
    }
}

/// Computes the escalation closure for a task.
pub fn escalation_closure(net: &Network, task: &Task) -> EscalationClosure {
    // Transitive closure over the related-kinds graph. (decide_escalation
    // checks plausibility against the *original* kind only, i.e. one hop;
    // taking the full closure keeps this sound even if escalation policy
    // ever starts compounding.)
    let mut kinds = vec![task.kind];
    let mut i = 0;
    while i < kinds.len() {
        for &r in related_kinds(kinds[i]) {
            if !kinds.contains(&r) {
                kinds.push(r);
            }
        }
        i += 1;
    }
    let devices: Vec<String> = relevant_devices(net, task)
        .iter()
        .map(|&d| net.device(d).name.clone())
        .collect();
    let mut auto_grantable = BTreeSet::new();
    for &k in &kinds {
        for &a in k.mutating_actions() {
            // decide_escalation flatly denies destructive actions.
            if DESTRUCTIVE.contains(&a) {
                continue;
            }
            for d in &devices {
                auto_grantable.insert((a, d.clone()));
            }
        }
    }
    EscalationClosure {
        kinds,
        devices,
        auto_grantable,
    }
}

/// Runs the escalation-reachability pass over a spec.
pub fn check(net: &Network, task: &Task, spec: &PrivilegeMsp) -> Vec<Finding> {
    let closure = escalation_closure(net, task);
    let mut out = Vec::new();

    // Grants the closure adds on top of what the spec already allows.
    let widened: Vec<&(Action, String)> = closure
        .auto_grantable
        .iter()
        .filter(|(a, d)| !is_allowed(spec, *a, &Resource::Device(d.clone())))
        .collect();
    if !widened.is_empty() {
        let kinds = closure
            .kinds
            .iter()
            .map(|k| format!("{k:?}"))
            .collect::<Vec<_>>()
            .join(" -> ");
        out.push(Finding {
            severity: Severity::Info,
            code: codes::ESCALATION_WIDEN.to_string(),
            device: "*".to_string(),
            predicate: None,
            message: format!(
                "self-service escalation can add {} grant(s) the spec does not carry (reachable kinds: {kinds})",
                widened.len()
            ),
            suggestion: None,
        });
        let devices: BTreeSet<&str> = widened.iter().map(|(_, d)| d.as_str()).collect();
        if devices.len() >= 3 {
            let list = devices.iter().copied().collect::<Vec<_>>().join(", ");
            out.push(Finding {
                severity: Severity::Warning,
                code: codes::ESCALATION_BLAST_RADIUS.to_string(),
                device: "*".to_string(),
                predicate: None,
                message: format!(
                    "escalation blast radius spans {} devices without admin approval: [{list}]",
                    devices.len()
                ),
                suggestion: Some(
                    "tighten the ticket's affected endpoints, or require admin sign-off for escalations on this task".to_string(),
                ),
            });
        }
    }

    // Destructive reachability: auto-grant never adds these, so any that
    // are reachable come from the spec itself — cite the predicate.
    for (_, d) in net.devices() {
        let r = Resource::Device(d.name.clone());
        let mut granted: Vec<Action> = Vec::new();
        let mut cited: Option<usize> = None;
        for &a in &DESTRUCTIVE {
            if let Decision::Allowed { by } = evaluate(spec, a, &r) {
                granted.push(a);
                cited.get_or_insert(by);
            }
        }
        if let Some(by) = cited {
            out.push(Finding {
                severity: Severity::Error,
                code: codes::ESCALATION_DESTRUCTIVE.to_string(),
                device: d.name.clone(),
                predicate: Some(by),
                message: format!(
                    "destructive action(s) [{}] on {} are reachable without admin approval, granted by `{}`",
                    granted
                        .iter()
                        .map(Action::keyword)
                        .collect::<Vec<_>>()
                        .join(", "),
                    d.name,
                    spec.predicates[by]
                ),
                suggestion: Some(format!(
                    "add deny({}, {}) (and peers) or narrow the granting predicate",
                    granted[0].keyword(),
                    d.name
                )),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_netmodel::gen::enterprise_network;
    use heimdall_privilege::derive::derive_privileges;
    use heimdall_privilege::model::{Predicate, ResourcePattern};

    #[test]
    fn closure_covers_one_hop_escalations_exactly() {
        let g = enterprise_network();
        let task = Task::connectivity("h4", "srv1");
        let closure = escalation_closure(&g.net, &task);
        // Connectivity reaches Routing/AccessControl/Vlan (and through
        // them nothing new except what they relate back to).
        for k in [
            TaskKind::Connectivity,
            TaskKind::Routing,
            TaskKind::AccessControl,
            TaskKind::Vlan,
        ] {
            assert!(closure.kinds.contains(&k), "{k:?} missing");
        }
        assert!(!closure.kinds.contains(&TaskKind::IspChange));
        // fw1 is on the slice: ACL work is auto-grantable there.
        assert!(closure.reaches(Action::ModifyAcl, "fw1"));
        // Destructive never is; off-slice never is.
        assert!(!closure.reaches(Action::Erase, "fw1"));
        assert!(!closure.reaches(Action::ModifyAcl, "acc3"));
    }

    #[test]
    fn monitoring_closure_is_empty() {
        let g = enterprise_network();
        let task = Task {
            kind: TaskKind::Monitoring,
            affected: vec!["core1".to_string()],
        };
        let closure = escalation_closure(&g.net, &task);
        assert_eq!(closure.kinds, vec![TaskKind::Monitoring]);
        assert!(closure.auto_grantable.is_empty());
    }

    #[test]
    fn derived_spec_reports_widening_but_no_errors() {
        let g = enterprise_network();
        let task = Task::connectivity("h4", "srv1");
        let spec = derive_privileges(&g.net, &task);
        let findings = check(&g.net, &task, &spec);
        assert!(
            findings.iter().any(|f| f.code == codes::ESCALATION_WIDEN),
            "{findings:?}"
        );
        assert!(
            findings.iter().all(|f| f.severity < Severity::Error),
            "derived specs must never trip the error gate: {findings:?}"
        );
    }

    #[test]
    fn destructive_reachability_cites_the_wildcard() {
        let g = enterprise_network();
        let task = Task::connectivity("h4", "srv1");
        let spec = derive_privileges(&g.net, &task).with(Predicate::allow_all(
            ResourcePattern::Device("fw1".to_string()),
        ));
        let findings = check(&g.net, &task, &spec);
        let destr = findings
            .iter()
            .find(|f| f.code == codes::ESCALATION_DESTRUCTIVE)
            .expect("destructive reachability finding");
        assert_eq!(destr.severity, Severity::Error);
        assert_eq!(destr.device, "fw1");
        let by = destr.predicate.expect("cites a predicate");
        assert_eq!(spec.predicates[by].to_string(), "allow(*, fw1)");
        assert!(destr.message.contains("erase"), "{}", destr.message);
    }

    #[test]
    fn explicit_deny_clears_destructive_reachability() {
        let g = enterprise_network();
        let task = Task::connectivity("h4", "srv1");
        let spec = derive_privileges(&g.net, &task)
            .with(Predicate::allow_all(ResourcePattern::Device(
                "fw1".to_string(),
            )))
            .with(Predicate::deny(
                Action::Erase,
                ResourcePattern::Device("fw1".to_string()),
            ))
            .with(Predicate::deny(
                Action::Reboot,
                ResourcePattern::Device("fw1".to_string()),
            ))
            .with(Predicate::deny(
                Action::ModifyCredentials,
                ResourcePattern::Device("fw1".to_string()),
            ));
        let findings = check(&g.net, &task, &spec);
        assert!(
            !findings
                .iter()
                .any(|f| f.code == codes::ESCALATION_DESTRUCTIVE),
            "{findings:?}"
        );
    }
}
