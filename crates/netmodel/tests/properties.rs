//! Property-based tests for the netmodel substrate.
//!
//! Three invariants underpin everything above this crate:
//! 1. `parse(print(config)) == config` — the twin and enforcer exchange
//!    configs as text;
//! 2. `apply(diff(a, b), a) == b` — the enforcer replays exactly what the
//!    technician did;
//! 3. prefix arithmetic is self-consistent — routing and ACLs match on it.

use heimdall_netmodel::acl::{Acl, AclAction, AclEntry, PortMatch, Proto};
use heimdall_netmodel::config::DeviceConfig;
use heimdall_netmodel::diff::diff_configs;
use heimdall_netmodel::iface::Interface;
use heimdall_netmodel::ip::Prefix;
use heimdall_netmodel::parser::parse_config;
use heimdall_netmodel::printer::print_config;
use heimdall_netmodel::proto::{NextHop, OspfConfig, StaticRoute};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::new(Ipv4Addr::from(a), l).unwrap())
}

fn arb_port_match() -> impl Strategy<Value = PortMatch> {
    prop_oneof![
        Just(PortMatch::Any),
        any::<u16>().prop_map(PortMatch::Eq),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| PortMatch::Range(a.min(b), a.max(b))),
    ]
}

fn arb_proto() -> impl Strategy<Value = Proto> {
    prop_oneof![
        Just(Proto::Any),
        Just(Proto::Tcp),
        Just(Proto::Udp),
        Just(Proto::Icmp)
    ]
}

fn arb_acl_entry() -> impl Strategy<Value = AclEntry> {
    (
        prop_oneof![Just(AclAction::Permit), Just(AclAction::Deny)],
        arb_proto(),
        arb_prefix(),
        arb_prefix(),
        arb_port_match(),
        arb_port_match(),
    )
        .prop_map(|(action, proto, src, dst, src_port, dst_port)| AclEntry {
            action,
            proto,
            src,
            dst,
            src_port,
            dst_port,
        })
}

fn arb_config() -> impl Strategy<Value = DeviceConfig> {
    (
        (
            "[a-z][a-z0-9]{1,8}",
            prop_oneof![Just("101"), Just("EDGE-IN"), Just("dmz")],
        ),
        proptest::collection::vec(arb_acl_entry(), 0..6),
        proptest::collection::vec((arb_prefix(), arb_ip(), 1u8..=254), 0..4),
        proptest::option::of((
            1u32..100,
            proptest::collection::vec((arb_prefix(), 0u32..3), 0..4),
        )),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |((host, acl_name), acl_entries, statics, ospf, if0, if1, if2)| {
                let mut c = DeviceConfig::new(host);
                for (n, on) in [(0, if0), (1, if1), (2, if2)] {
                    if on {
                        let mut i = Interface::new(format!("Gi0/{n}"));
                        i.enabled = n != 1;
                        c.upsert_interface(i);
                    }
                }
                if !acl_entries.is_empty() {
                    c.upsert_acl(Acl {
                        name: acl_name.to_string(),
                        entries: acl_entries,
                    });
                }
                for (prefix, nh, dist) in statics {
                    c.static_routes.push(StaticRoute {
                        prefix,
                        next_hop: NextHop::Ip(nh),
                        distance: dist,
                    });
                }
                if let Some((pid, nets)) = ospf {
                    let mut o = OspfConfig::new(pid);
                    for (p, a) in nets {
                        o.networks
                            .push(heimdall_netmodel::proto::OspfNetwork { prefix: p, area: a });
                    }
                    c.ospf = Some(o);
                }
                c
            },
        )
}

proptest! {
    #[test]
    fn print_parse_round_trip(cfg in arb_config()) {
        let text = print_config(&cfg);
        let parsed = parse_config(&text).expect("printer output must parse");
        prop_assert_eq!(parsed, cfg);
    }

    #[test]
    fn diff_apply_reproduces_target(a in arb_config(), b in arb_config()) {
        // Diff requires same hostname (diffs are per-device).
        let mut b = b;
        b.hostname = a.hostname.clone();
        let diff = diff_configs(&a, &b);
        let mut patched = a.clone();
        for ch in &diff.changes {
            ch.apply(&mut patched).expect("diff changes must apply cleanly");
        }
        // Interface order carries no semantics; compare canonical forms.
        prop_assert_eq!(patched.canonicalized(), b.canonicalized());
    }

    #[test]
    fn diff_of_identical_is_empty(a in arb_config()) {
        prop_assert!(diff_configs(&a, &a).is_empty());
    }

    #[test]
    fn prefix_contains_own_addr(p in arb_prefix()) {
        prop_assert!(p.contains(p.addr()));
        prop_assert!(p.contains(p.broadcast()));
    }

    #[test]
    fn prefix_string_round_trip(p in arb_prefix()) {
        let s = p.to_string();
        let back: Prefix = s.parse().unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn prefix_split_partitions(p in arb_prefix()) {
        if let Some((lo, hi)) = p.split() {
            prop_assert!(p.covers(&lo) && p.covers(&hi));
            prop_assert!(!lo.contains(hi.addr()));
            prop_assert_eq!(lo.size() + hi.size(), p.size());
        }
    }

    #[test]
    fn netmask_wildcard_inverse(len in 0u8..=32) {
        let p = Prefix::new(Ipv4Addr::new(10, 0, 0, 0), len).unwrap();
        let m = u32::from(p.netmask());
        let w = u32::from(p.wildcard());
        prop_assert_eq!(m ^ w, u32::MAX);
        prop_assert_eq!(heimdall_netmodel::ip::netmask_to_len(p.netmask()).unwrap(), len);
    }

    #[test]
    fn acl_entry_display_reparses(e in arb_acl_entry()) {
        let line = e.to_string();
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let back = heimdall_netmodel::parser::parse_acl_entry(&tokens).unwrap();
        prop_assert_eq!(back, e);
    }

    #[test]
    fn acl_first_match_consistent_with_evaluate(
        entries in proptest::collection::vec(arb_acl_entry(), 1..8),
        src in arb_ip(), dst in arb_ip(), sport in any::<u16>(), dport in any::<u16>(),
    ) {
        let acl = Acl { name: "t".to_string(), entries };
        let verdict = acl.evaluate(Proto::Tcp, src, dst, sport, dport);
        match acl.first_match(Proto::Tcp, src, dst, sport, dport) {
            Some(i) => prop_assert_eq!(acl.entries[i].action, verdict),
            None => prop_assert_eq!(verdict, AclAction::Deny),
        }
    }
}

#[test]
fn generated_networks_survive_full_text_cycle() {
    // Not random, but the heaviest round-trip: every device of both Table 1
    // networks through print → parse → print, byte-identical the second time.
    for g in [
        heimdall_netmodel::gen::enterprise_network(),
        heimdall_netmodel::gen::university_network(),
    ] {
        for (_, d) in g.net.devices() {
            let t1 = print_config(&d.config);
            let c2 = parse_config(&t1).unwrap();
            let t2 = print_config(&c2);
            assert_eq!(t1, t2, "unstable print for {}", d.name);
        }
    }
}
