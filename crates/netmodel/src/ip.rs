//! IPv4 addressing primitives: prefixes (CIDR), netmasks, and Cisco-style
//! wildcard masks.
//!
//! We build on [`std::net::Ipv4Addr`] and add the arithmetic the rest of the
//! system needs: canonicalized prefixes, containment tests, subnet
//! enumeration, and conversions between prefix lengths, dotted netmasks, and
//! inverted wildcard masks (as used by `network` and `access-list`
//! statements in IOS-like configurations).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 prefix in CIDR form, canonicalized so that all host bits are zero.
///
/// `Prefix` is the unit of routing and matching throughout the system: FIB
/// entries, `network` statements, ACL source/destination matchers, and mined
/// policy endpoints are all prefixes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Prefix {
    addr: Ipv4Addr,
    len: u8,
}

/// Errors produced when parsing or constructing addressing types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpError {
    /// The prefix length was greater than 32.
    BadLength(u8),
    /// The string was not a valid prefix, address, or mask.
    Parse(String),
    /// A dotted-quad mask had non-contiguous bits.
    NonContiguousMask(Ipv4Addr),
}

impl fmt::Display for IpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpError::BadLength(l) => write!(f, "prefix length {l} exceeds 32"),
            IpError::Parse(s) => write!(f, "cannot parse {s:?}"),
            IpError::NonContiguousMask(m) => write!(f, "mask {m} has non-contiguous bits"),
        }
    }
}

impl std::error::Error for IpError {}

impl Prefix {
    /// The default route, `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix {
        addr: Ipv4Addr::new(0, 0, 0, 0),
        len: 0,
    };

    /// Builds a prefix, zeroing any host bits in `addr`.
    ///
    /// Returns an error if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self, IpError> {
        if len > 32 {
            return Err(IpError::BadLength(len));
        }
        let masked = u32::from(addr) & mask_bits(len);
        Ok(Prefix {
            addr: Ipv4Addr::from(masked),
            len,
        })
    }

    /// Builds a /32 host prefix for `addr`.
    pub fn host(addr: Ipv4Addr) -> Self {
        Prefix { addr, len: 32 }
    }

    /// Builds a prefix from an address and a dotted netmask
    /// (e.g. `255.255.255.0` → `/24`).
    pub fn with_netmask(addr: Ipv4Addr, mask: Ipv4Addr) -> Result<Self, IpError> {
        let len = netmask_to_len(mask)?;
        Prefix::new(addr, len)
    }

    /// The network address (host bits zero).
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// The prefix length in bits.
    ///
    /// (Not a container length — there is deliberately no `is_empty`;
    /// see [`Prefix::is_default`] for the zero-length check.)
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for the zero-length default prefix.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The dotted netmask, e.g. `255.255.255.0` for a /24.
    pub fn netmask(&self) -> Ipv4Addr {
        Ipv4Addr::from(mask_bits(self.len))
    }

    /// The Cisco wildcard (inverted) mask, e.g. `0.0.0.255` for a /24.
    pub fn wildcard(&self) -> Ipv4Addr {
        Ipv4Addr::from(!mask_bits(self.len))
    }

    /// Whether `ip` falls inside this prefix.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        u32::from(ip) & mask_bits(self.len) == u32::from(self.addr)
    }

    /// Whether `other` is fully contained in (or equal to) this prefix.
    pub fn covers(&self, other: &Prefix) -> bool {
        other.len >= self.len && self.contains(other.addr)
    }

    /// The number of addresses in the prefix (2^(32-len)), saturating.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len as u32)
    }

    /// The last address in the prefix (the broadcast address for a subnet).
    pub fn broadcast(&self) -> Ipv4Addr {
        Ipv4Addr::from(u32::from(self.addr) | !mask_bits(self.len))
    }

    /// The `n`-th usable host address (1-based), if it exists inside the
    /// prefix. For a /31 or /32 the network address itself is considered
    /// usable (point-to-point semantics).
    pub fn nth_host(&self, n: u32) -> Option<Ipv4Addr> {
        if self.len >= 31 {
            let off = n.checked_sub(1)?;
            let a = u32::from(self.addr).checked_add(off)?;
            return if self.contains(Ipv4Addr::from(a)) {
                Some(Ipv4Addr::from(a))
            } else {
                None
            };
        }
        let a = u32::from(self.addr).checked_add(n)?;
        let ip = Ipv4Addr::from(a);
        if self.contains(ip) && ip != self.broadcast() {
            Some(ip)
        } else {
            None
        }
    }

    /// Splits this prefix into its two halves, one bit longer each.
    pub fn split(&self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let len = self.len + 1;
        let lo = Prefix {
            addr: self.addr,
            len,
        };
        let hi_bits = u32::from(self.addr) | (1u32 << (32 - len as u32));
        let hi = Prefix {
            addr: Ipv4Addr::from(hi_bits),
            len,
        };
        Some((lo, hi))
    }

    /// Enumerates the `count` first subnets of length `sublen` inside this
    /// prefix. Used by generators to carve address plans.
    pub fn subnets(&self, sublen: u8, count: usize) -> Vec<Prefix> {
        let mut out = Vec::new();
        if sublen < self.len || sublen > 32 {
            return out;
        }
        let step = 1u64 << (32 - sublen as u32);
        let base = u32::from(self.addr) as u64;
        for i in 0..count as u64 {
            let a = base + i * step;
            if a > u32::from(self.broadcast()) as u64 {
                break;
            }
            out.push(Prefix {
                addr: Ipv4Addr::from(a as u32),
                len: sublen,
            });
        }
        out
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Prefix {
    type Err = IpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, l) = s
            .split_once('/')
            .ok_or_else(|| IpError::Parse(s.to_string()))?;
        let addr: Ipv4Addr = a.parse().map_err(|_| IpError::Parse(s.to_string()))?;
        let len: u8 = l.parse().map_err(|_| IpError::Parse(s.to_string()))?;
        Prefix::new(addr, len)
    }
}

/// Returns the `len`-bit contiguous mask as a `u32` (0 for `len == 0`).
fn mask_bits(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len as u32)
    }
}

/// Converts a dotted netmask such as `255.255.252.0` to a prefix length.
pub fn netmask_to_len(mask: Ipv4Addr) -> Result<u8, IpError> {
    let m = u32::from(mask);
    let len = m.leading_ones() as u8;
    if m != mask_bits(len) {
        return Err(IpError::NonContiguousMask(mask));
    }
    Ok(len)
}

/// Converts a Cisco wildcard mask such as `0.0.3.255` to a prefix length.
pub fn wildcard_to_len(wild: Ipv4Addr) -> Result<u8, IpError> {
    netmask_to_len(Ipv4Addr::from(!u32::from(wild)))
}

/// Parses `a.b.c.d` into an [`Ipv4Addr`], with our error type.
pub fn parse_ip(s: &str) -> Result<Ipv4Addr, IpError> {
    s.parse().map_err(|_| IpError::Parse(s.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalizes_host_bits() {
        let pre = Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 24).unwrap();
        assert_eq!(pre.addr(), Ipv4Addr::new(10, 1, 2, 0));
        assert_eq!(pre.to_string(), "10.1.2.0/24");
    }

    #[test]
    fn rejects_long_prefix() {
        assert!(matches!(
            Prefix::new(Ipv4Addr::new(1, 2, 3, 4), 33),
            Err(IpError::BadLength(33))
        ));
    }

    #[test]
    fn netmask_and_wildcard_round_trip() {
        let pre = p("192.168.4.0/22");
        assert_eq!(pre.netmask(), Ipv4Addr::new(255, 255, 252, 0));
        assert_eq!(pre.wildcard(), Ipv4Addr::new(0, 0, 3, 255));
        assert_eq!(netmask_to_len(pre.netmask()).unwrap(), 22);
        assert_eq!(wildcard_to_len(pre.wildcard()).unwrap(), 22);
    }

    #[test]
    fn non_contiguous_mask_rejected() {
        assert!(netmask_to_len(Ipv4Addr::new(255, 0, 255, 0)).is_err());
    }

    #[test]
    fn containment() {
        let pre = p("10.0.0.0/8");
        assert!(pre.contains(Ipv4Addr::new(10, 255, 1, 2)));
        assert!(!pre.contains(Ipv4Addr::new(11, 0, 0, 1)));
        assert!(pre.covers(&p("10.3.0.0/16")));
        assert!(!pre.covers(&p("0.0.0.0/0")));
        assert!(Prefix::DEFAULT.covers(&pre));
    }

    #[test]
    fn default_route_parses() {
        let d = p("0.0.0.0/0");
        assert!(d.is_default());
        assert!(d.contains(Ipv4Addr::new(200, 1, 1, 1)));
        assert_eq!(d.netmask(), Ipv4Addr::new(0, 0, 0, 0));
    }

    #[test]
    fn nth_host_skips_network_and_broadcast() {
        let pre = p("10.0.0.0/30");
        assert_eq!(pre.nth_host(1), Some(Ipv4Addr::new(10, 0, 0, 1)));
        assert_eq!(pre.nth_host(2), Some(Ipv4Addr::new(10, 0, 0, 2)));
        assert_eq!(pre.nth_host(3), None); // broadcast
    }

    #[test]
    fn nth_host_p2p() {
        let pre = p("10.0.0.0/31");
        assert_eq!(pre.nth_host(1), Some(Ipv4Addr::new(10, 0, 0, 0)));
        assert_eq!(pre.nth_host(2), Some(Ipv4Addr::new(10, 0, 0, 1)));
        assert_eq!(pre.nth_host(3), None);
    }

    #[test]
    fn split_halves() {
        let (lo, hi) = p("10.0.0.0/24").split().unwrap();
        assert_eq!(lo, p("10.0.0.0/25"));
        assert_eq!(hi, p("10.0.0.128/25"));
        assert!(p("1.2.3.4/32").split().is_none());
    }

    #[test]
    fn subnets_enumeration() {
        let subs = p("10.0.0.0/16").subnets(24, 3);
        assert_eq!(
            subs,
            vec![p("10.0.0.0/24"), p("10.0.1.0/24"), p("10.0.2.0/24")]
        );
        // Ask for more than fit.
        let subs = p("10.0.0.0/30").subnets(31, 5);
        assert_eq!(subs.len(), 2);
    }

    #[test]
    fn broadcast_addr() {
        assert_eq!(p("10.1.0.0/16").broadcast(), Ipv4Addr::new(10, 1, 255, 255));
        assert_eq!(p("1.2.3.4/32").broadcast(), Ipv4Addr::new(1, 2, 3, 4));
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut v = vec![p("10.0.1.0/24"), p("10.0.0.0/8"), p("10.0.0.0/24")];
        v.sort();
        assert_eq!(v, vec![p("10.0.0.0/8"), p("10.0.0.0/24"), p("10.0.1.0/24")]);
    }

    #[test]
    fn parse_errors() {
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("banana/8".parse::<Prefix>().is_err());
    }
}
