//! Snapshot persistence: a network as a directory of per-device
//! configuration files plus a topology file — the layout Batfish calls a
//! snapshot, and the form in which real enterprises would hand Heimdall
//! their network.
//!
//! ```text
//! snapshot/
//!   topology.txt          # one "devA ifaceA devB ifaceB" line per link
//!   devices.txt           # one "name kind" line per device
//!   configs/
//!     r1.cfg              # IOS-like text, print_config format
//!     h1.cfg
//! ```
//!
//! `load_snapshot(save_snapshot(net)) == net` up to interface ordering
//! (property-tested in this module).

use crate::device::{Device, DeviceKind};
use crate::parser::parse_config;
use crate::printer::print_config;
use crate::topology::Network;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// A snapshot load/save failure.
#[derive(Debug)]
pub enum SnapshotError {
    Io(io::Error),
    Parse(String),
    Layout(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Parse(m) => write!(f, "snapshot parse error: {m}"),
            SnapshotError::Layout(m) => write!(f, "snapshot layout error: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Writes a network as a snapshot directory (created if missing).
pub fn save_snapshot(net: &Network, dir: &Path) -> Result<(), SnapshotError> {
    let configs = dir.join("configs");
    fs::create_dir_all(&configs)?;

    let mut devices = String::new();
    for (_, d) in net.devices() {
        devices.push_str(&format!("{} {}\n", d.name, d.kind.keyword()));
        fs::write(
            configs.join(format!("{}.cfg", d.name)),
            print_config(&d.config),
        )?;
    }
    fs::write(dir.join("devices.txt"), devices)?;

    let mut topo = String::new();
    for l in net.links() {
        topo.push_str(&format!(
            "{} {} {} {}\n",
            net.device(l.a).name,
            l.a_iface,
            net.device(l.b).name,
            l.b_iface
        ));
    }
    fs::write(dir.join("topology.txt"), topo)?;
    Ok(())
}

fn kind_from_keyword(s: &str) -> Option<DeviceKind> {
    match s {
        "router" => Some(DeviceKind::Router),
        "switch" => Some(DeviceKind::Switch),
        "firewall" => Some(DeviceKind::Firewall),
        "host" => Some(DeviceKind::Host),
        _ => None,
    }
}

/// Loads a snapshot directory back into a network.
pub fn load_snapshot(dir: &Path) -> Result<Network, SnapshotError> {
    let mut net = Network::new();
    let devices = fs::read_to_string(dir.join("devices.txt"))?;
    for (n, line) in devices.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (name, kind) = line
            .split_once(' ')
            .ok_or_else(|| SnapshotError::Layout(format!("devices.txt line {}", n + 1)))?;
        let kind = kind_from_keyword(kind)
            .ok_or_else(|| SnapshotError::Layout(format!("unknown kind {kind:?}")))?;
        let text = fs::read_to_string(dir.join("configs").join(format!("{name}.cfg")))?;
        let config =
            parse_config(&text).map_err(|e| SnapshotError::Parse(format!("{name}: {e}")))?;
        if config.hostname != name {
            return Err(SnapshotError::Layout(format!(
                "config hostname {:?} does not match file {name}.cfg",
                config.hostname
            )));
        }
        let mut dev = Device::new(name, kind);
        dev.config = config;
        net.add_device(dev)
            .map_err(|e| SnapshotError::Layout(e.to_string()))?;
    }
    let topo = fs::read_to_string(dir.join("topology.txt"))?;
    for (n, line) in topo.lines().enumerate() {
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.is_empty() {
            continue;
        }
        let [a, ai, b, bi] = parts.as_slice() else {
            return Err(SnapshotError::Layout(format!(
                "topology.txt line {}",
                n + 1
            )));
        };
        net.add_link(a, ai, b, bi)
            .map_err(|e| SnapshotError::Layout(format!("topology.txt line {}: {e}", n + 1)))?;
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{enterprise_network, university_network};

    fn tmp(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("heimdall-snap-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn round_trips_both_evaluation_networks() {
        for (g, label) in [(enterprise_network(), "ent"), (university_network(), "uni")] {
            let dir = tmp(label);
            save_snapshot(&g.net, &dir).expect("save");
            let back = load_snapshot(&dir).expect("load");
            assert_eq!(back.device_count(), g.net.device_count());
            assert_eq!(back.link_count(), g.net.link_count());
            for (_, d) in g.net.devices() {
                let b = back.device_by_name(&d.name).expect("device survives");
                assert_eq!(b.kind, d.kind);
                assert_eq!(
                    b.config.canonicalized(),
                    d.config.canonicalized(),
                    "{label}/{}",
                    d.name
                );
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn links_survive_with_endpoints() {
        // Behavioral equivalence (identical converged RIBs) is asserted in
        // the cross-crate integration tests, where heimdall-routing is
        // available; here we check every link endpoint survives the trip.
        let g = enterprise_network();
        let dir = tmp("links");
        save_snapshot(&g.net, &dir).expect("save");
        let back = load_snapshot(&dir).expect("load");
        for l in g.net.links() {
            let a = g.net.device(l.a).name.clone();
            let b = g.net.device(l.b).name.clone();
            let ai = back.idx_of(&a);
            assert!(back
                .peers_of(ai, &l.a_iface)
                .iter()
                .any(|(p, pi)| back.device(*p).name == b && *pi == l.b_iface));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostname_mismatch_rejected() {
        let g = enterprise_network();
        let dir = tmp("mismatch");
        save_snapshot(&g.net, &dir).expect("save");
        // Corrupt: rename a config's hostname.
        let p = dir.join("configs").join("fw1.cfg");
        let text = fs::read_to_string(&p)
            .unwrap()
            .replace("hostname fw1", "hostname fw9");
        fs::write(&p, text).unwrap();
        assert!(matches!(load_snapshot(&dir), Err(SnapshotError::Layout(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_config_file_is_io_error() {
        let g = enterprise_network();
        let dir = tmp("missing");
        save_snapshot(&g.net, &dir).expect("save");
        fs::remove_file(dir.join("configs").join("h1.cfg")).unwrap();
        assert!(matches!(load_snapshot(&dir), Err(SnapshotError::Io(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_topology_line_rejected() {
        let g = enterprise_network();
        let dir = tmp("topo");
        save_snapshot(&g.net, &dir).expect("save");
        fs::write(dir.join("topology.txt"), "only three fields\n").unwrap();
        assert!(matches!(load_snapshot(&dir), Err(SnapshotError::Layout(_))));
        let _ = fs::remove_dir_all(&dir);
    }
}
