//! A device's full configuration: the object that is parsed, printed,
//! diffed, sanitized for the twin, and ultimately pushed to production.

use crate::acl::Acl;
use crate::iface::Interface;
use crate::proto::{BgpConfig, OspfConfig, StaticRoute};
use crate::vlan::Vlan;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Secrets embedded in a device configuration.
///
/// These are exactly the items the paper worries about leaking through a
/// cloned emulation ("can expose sensitive data (e.g., an IPSec key)") and
/// that APT10-style attackers harvest. The twin's sanitizer strips them; the
/// attack-scenario tests verify none survive into the emulation layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Secrets {
    /// `enable secret ...` — privileged-exec password hash.
    pub enable_secret: Option<String>,
    /// `snmp-server community ...` strings.
    pub snmp_communities: Vec<String>,
    /// OSPF area authentication keys, keyed by interface name.
    pub ospf_auth_keys: BTreeMap<String, String>,
    /// BGP session passwords, keyed by neighbor address text.
    pub bgp_passwords: BTreeMap<String, String>,
    /// IPsec pre-shared keys, keyed by tunnel/peer name.
    pub ipsec_psks: BTreeMap<String, String>,
    /// Local user accounts (`username NAME secret HASH`).
    pub users: BTreeMap<String, String>,
}

impl Secrets {
    /// Whether any secret material is present at all.
    pub fn is_empty(&self) -> bool {
        self.enable_secret.is_none()
            && self.snmp_communities.is_empty()
            && self.ospf_auth_keys.is_empty()
            && self.bgp_passwords.is_empty()
            && self.ipsec_psks.is_empty()
            && self.users.is_empty()
    }

    /// Every secret string in one flat list (for leak-detection tests that
    /// grep emulated output for any of them).
    pub fn all_values(&self) -> Vec<&str> {
        let mut v: Vec<&str> = Vec::new();
        if let Some(s) = &self.enable_secret {
            v.push(s);
        }
        v.extend(self.snmp_communities.iter().map(String::as_str));
        v.extend(self.ospf_auth_keys.values().map(String::as_str));
        v.extend(self.bgp_passwords.values().map(String::as_str));
        v.extend(self.ipsec_psks.values().map(String::as_str));
        v.extend(self.users.values().map(String::as_str));
        v
    }
}

/// The complete configuration of one device.
///
/// Interfaces keep configuration order (a `Vec`), ACLs and VLANs are sorted
/// maps so that printing is deterministic — determinism matters because
/// config *lines* are counted in Table 1 and diffed by the enforcer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceConfig {
    pub hostname: String,
    pub interfaces: Vec<Interface>,
    /// ACLs by name.
    pub acls: BTreeMap<String, Acl>,
    /// Declared VLANs by id.
    pub vlans: BTreeMap<u16, Vlan>,
    pub static_routes: Vec<StaticRoute>,
    pub ospf: Option<OspfConfig>,
    pub bgp: Option<BgpConfig>,
    pub secrets: Secrets,
    /// Miscellaneous global lines we preserve verbatim (logging, ntp,
    /// banner...) — real configs are mostly this, and Table 1 counts lines.
    pub raw_globals: Vec<String>,
}

impl DeviceConfig {
    /// An empty configuration for `hostname`.
    pub fn new(hostname: impl Into<String>) -> Self {
        DeviceConfig {
            hostname: hostname.into(),
            interfaces: Vec::new(),
            acls: BTreeMap::new(),
            vlans: BTreeMap::new(),
            static_routes: Vec::new(),
            ospf: None,
            bgp: None,
            secrets: Secrets::default(),
            raw_globals: Vec::new(),
        }
    }

    /// Finds an interface by name.
    pub fn interface(&self, name: &str) -> Option<&Interface> {
        self.interfaces.iter().find(|i| i.name == name)
    }

    /// Finds an interface by name, mutably.
    pub fn interface_mut(&mut self, name: &str) -> Option<&mut Interface> {
        self.interfaces.iter_mut().find(|i| i.name == name)
    }

    /// Adds (or replaces, by name) an interface.
    pub fn upsert_interface(&mut self, iface: Interface) {
        if let Some(slot) = self.interfaces.iter_mut().find(|i| i.name == iface.name) {
            *slot = iface;
        } else {
            self.interfaces.push(iface);
        }
    }

    /// Adds or replaces an ACL by name.
    pub fn upsert_acl(&mut self, acl: Acl) {
        self.acls.insert(acl.name.clone(), acl);
    }

    /// A copy of this config with every secret removed — what the twin's
    /// emulation layer is allowed to see.
    pub fn sanitized(&self) -> DeviceConfig {
        let mut c = self.clone();
        c.secrets = Secrets::default();
        // Raw globals may embed secret-bearing lines; drop any we know about.
        c.raw_globals.retain(|l| {
            !(l.starts_with("enable secret")
                || l.starts_with("snmp-server community")
                || l.starts_with("username")
                || l.contains("authentication-key")
                || l.contains("pre-shared-key"))
        });
        c
    }

    /// A copy with interfaces sorted by name. Interface order carries no
    /// semantics (it only affects printed layout); diffs reproduce a target
    /// config up to this canonical form, so comparisons after `diff`+`apply`
    /// should canonicalize both sides first.
    pub fn canonicalized(&self) -> DeviceConfig {
        let mut c = self.clone();
        c.interfaces.sort_by(|a, b| a.name.cmp(&b.name));
        c
    }

    /// All interface names, in configuration order.
    pub fn interface_names(&self) -> Vec<&str> {
        self.interfaces.iter().map(|i| i.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::{Acl, AclEntry};
    use std::net::Ipv4Addr;

    #[test]
    fn upsert_interface_replaces_by_name() {
        let mut c = DeviceConfig::new("r1");
        c.upsert_interface(Interface::new("Gi0/0"));
        c.upsert_interface(Interface::new("Gi0/0").with_address(Ipv4Addr::new(10, 0, 0, 1), 24));
        assert_eq!(c.interfaces.len(), 1);
        assert!(c.interface("Gi0/0").unwrap().address.is_some());
    }

    #[test]
    fn upsert_acl() {
        let mut c = DeviceConfig::new("r1");
        c.upsert_acl(Acl::new("101").entry(AclEntry::permit_any()));
        c.upsert_acl(
            Acl::new("101")
                .entry(AclEntry::deny_any())
                .entry(AclEntry::permit_any()),
        );
        assert_eq!(c.acls["101"].entries.len(), 2);
    }

    #[test]
    fn sanitized_strips_all_secrets() {
        let mut c = DeviceConfig::new("r1");
        c.secrets.enable_secret = Some("$1$deadbeef".into());
        c.secrets.snmp_communities.push("S3CR3T".into());
        c.secrets.ipsec_psks.insert("tun0".into(), "hunter2".into());
        c.raw_globals.push("snmp-server community S3CR3T ro".into());
        c.raw_globals.push("ntp server 10.0.0.5".into());
        let s = c.sanitized();
        assert!(s.secrets.is_empty());
        assert_eq!(s.raw_globals, vec!["ntp server 10.0.0.5".to_string()]);
    }

    #[test]
    fn all_values_collects_everything() {
        let mut s = Secrets::default();
        assert!(s.is_empty());
        s.enable_secret = Some("a".into());
        s.snmp_communities.push("b".into());
        s.ospf_auth_keys.insert("Gi0/0".into(), "c".into());
        s.bgp_passwords.insert("10.0.0.2".into(), "d".into());
        s.ipsec_psks.insert("t".into(), "e".into());
        s.users.insert("admin".into(), "f".into());
        let mut v = s.all_values();
        v.sort();
        assert_eq!(v, vec!["a", "b", "c", "d", "e", "f"]);
        assert!(!s.is_empty());
    }
}
