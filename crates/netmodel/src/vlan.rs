//! VLAN definitions and switchport semantics.
//!
//! The paper's third reproduced issue class is "a VLAN issue" (an access
//! port configured into the wrong VLAN). This module models just enough of
//! 802.1Q semantics for that class of bug to exist and be fixable: VLAN
//! declarations on switches, access/trunk port modes, and the tag-compat
//! check the L2 data plane performs per hop.

use serde::{Deserialize, Serialize};

/// A VLAN id (1-4094; 1 is the conventional default VLAN).
pub type VlanId = u16;

/// The default VLAN every access port starts in.
pub const DEFAULT_VLAN: VlanId = 1;

/// A VLAN declared on a switch (`vlan 10` / `name staff`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vlan {
    pub id: VlanId,
    pub name: Option<String>,
}

impl Vlan {
    /// Declares VLAN `id` with no name.
    pub fn new(id: VlanId) -> Self {
        Vlan { id, name: None }
    }

    /// Declares VLAN `id` with a symbolic name.
    pub fn named(id: VlanId, name: impl Into<String>) -> Self {
        Vlan {
            id,
            name: Some(name.into()),
        }
    }
}

/// How a switchport treats VLAN tags.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwitchPortMode {
    /// Untagged port in a single VLAN.
    Access { vlan: VlanId },
    /// Tagged port carrying the listed VLANs (empty list = all).
    Trunk { allowed: Vec<VlanId> },
}

impl SwitchPortMode {
    /// An access port in the default VLAN.
    pub fn access_default() -> Self {
        SwitchPortMode::Access { vlan: DEFAULT_VLAN }
    }

    /// Whether frames belonging to `vlan` may traverse this port.
    pub fn carries(&self, vlan: VlanId) -> bool {
        match self {
            SwitchPortMode::Access { vlan: v } => *v == vlan,
            SwitchPortMode::Trunk { allowed } => allowed.is_empty() || allowed.contains(&vlan),
        }
    }

    /// The VLAN an untagged ingress frame is assigned on this port, if the
    /// port accepts untagged frames (access ports only).
    pub fn ingress_vlan(&self) -> Option<VlanId> {
        match self {
            SwitchPortMode::Access { vlan } => Some(*vlan),
            SwitchPortMode::Trunk { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_port_carries_only_its_vlan() {
        let m = SwitchPortMode::Access { vlan: 10 };
        assert!(m.carries(10));
        assert!(!m.carries(20));
        assert_eq!(m.ingress_vlan(), Some(10));
    }

    #[test]
    fn trunk_with_allowed_list() {
        let m = SwitchPortMode::Trunk {
            allowed: vec![10, 20],
        };
        assert!(m.carries(10));
        assert!(m.carries(20));
        assert!(!m.carries(30));
        assert_eq!(m.ingress_vlan(), None);
    }

    #[test]
    fn open_trunk_carries_everything() {
        let m = SwitchPortMode::Trunk { allowed: vec![] };
        assert!(m.carries(1));
        assert!(m.carries(4094));
    }

    #[test]
    fn default_access_mode() {
        assert!(SwitchPortMode::access_default().carries(DEFAULT_VLAN));
    }

    #[test]
    fn vlan_decl() {
        let v = Vlan::named(10, "staff");
        assert_eq!(v.id, 10);
        assert_eq!(v.name.as_deref(), Some("staff"));
        assert!(Vlan::new(20).name.is_none());
    }
}
