//! Configuration linting: static sanity checks over a whole network, in
//! the spirit of Batfish's config-level analyses.
//!
//! The enforcer runs behavioral verification (converge + check policies);
//! the linter catches the *structural* mistakes that behavioral checks can
//! silently absorb — a dangling ACL reference behaves like "no ACL", an
//! undeclared VLAN behaves like a black hole, a duplicate address wins or
//! loses arbitrarily. Real MSP tickets are full of these.

use crate::device::DeviceKind;
use crate::l2::L2Domains;
use crate::proto::NextHop;
use crate::topology::Network;
use crate::vlan::SwitchPortMode;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Unusual but sometimes intentional (e.g. an edge interface with no
    /// modeled link — an upstream hand-off).
    Info,
    /// Almost certainly a misconfiguration.
    Warning,
    /// Will misbehave.
    Error,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintFinding {
    pub severity: Severity,
    /// Stable machine-readable code, e.g. `acl-ref-missing`.
    pub code: &'static str,
    pub device: String,
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:?}] {} {}: {}",
            self.severity, self.code, self.device, self.message
        )
    }
}

/// Runs every check over the network.
pub fn lint(net: &Network) -> Vec<LintFinding> {
    let mut out = Vec::new();
    acl_references(net, &mut out);
    undeclared_vlans(net, &mut out);
    duplicate_addresses(net, &mut out);
    dangling_interfaces(net, &mut out);
    unresolvable_statics(net, &mut out);
    hosts_without_gateway(net, &mut out);
    ospf_networks_matching_nothing(net, &mut out);
    subnet_split_across_domains(net, &mut out);
    // Stable report order regardless of HashMap iteration: severity
    // descending, then device, then code, then message — and dedupe,
    // since two passes can surface the same defect.
    out.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.device.cmp(&b.device))
            .then_with(|| a.code.cmp(b.code))
            .then_with(|| a.message.cmp(&b.message))
    });
    out.dedup();
    out
}

/// Findings at or above a severity.
pub fn lint_at_least(net: &Network, min: Severity) -> Vec<LintFinding> {
    lint(net)
        .into_iter()
        .filter(|f| f.severity >= min)
        .collect()
}

fn acl_references(net: &Network, out: &mut Vec<LintFinding>) {
    for (_, d) in net.devices() {
        for i in &d.config.interfaces {
            for (dir, name) in [("in", &i.acl_in), ("out", &i.acl_out)] {
                if let Some(name) = name {
                    if !d.config.acls.contains_key(name) {
                        out.push(LintFinding {
                            severity: Severity::Error,
                            code: "acl-ref-missing",
                            device: d.name.clone(),
                            message: format!(
                                "{} binds acl {name:?} ({dir}) which is not defined",
                                i.name
                            ),
                        });
                    }
                }
            }
        }
        // Unused ACLs are a hygiene warning.
        for name in d.config.acls.keys() {
            let used =
                d.config.interfaces.iter().any(|i| {
                    i.acl_in.as_deref() == Some(name) || i.acl_out.as_deref() == Some(name)
                });
            if !used {
                out.push(LintFinding {
                    severity: Severity::Info,
                    code: "acl-unused",
                    device: d.name.clone(),
                    message: format!("acl {name:?} is defined but bound to no interface"),
                });
            }
        }
    }
}

fn undeclared_vlans(net: &Network, out: &mut Vec<LintFinding>) {
    for (_, d) in net.devices() {
        for i in &d.config.interfaces {
            let vlans: Vec<u16> = match &i.switchport {
                Some(SwitchPortMode::Access { vlan }) => vec![*vlan],
                Some(SwitchPortMode::Trunk { allowed }) => allowed.clone(),
                None => continue,
            };
            for v in vlans {
                if !d.config.vlans.contains_key(&v) {
                    out.push(LintFinding {
                        severity: Severity::Warning,
                        code: "vlan-undeclared",
                        device: d.name.clone(),
                        message: format!("{} uses vlan {v} which is not declared", i.name),
                    });
                }
            }
        }
    }
}

fn duplicate_addresses(net: &Network, out: &mut Vec<LintFinding>) {
    let mut owners: HashMap<Ipv4Addr, Vec<String>> = HashMap::new();
    for (_, d) in net.devices() {
        for i in &d.config.interfaces {
            if let Some(a) = i.address {
                owners
                    .entry(a.ip)
                    .or_default()
                    .push(format!("{}.{}", d.name, i.name));
            }
        }
    }
    for (ip, who) in owners {
        if who.len() > 1 {
            out.push(LintFinding {
                severity: Severity::Error,
                code: "addr-duplicate",
                device: who[0].split('.').next().unwrap_or("").to_string(),
                message: format!("address {ip} configured on {who:?}"),
            });
        }
    }
}

fn dangling_interfaces(net: &Network, out: &mut Vec<LintFinding>) {
    for (di, d) in net.devices() {
        for i in &d.config.interfaces {
            let is_virtual = i.name.starts_with("Lo") || crate::l2::svi_vlan(&i.name).is_some();
            if i.address.is_some()
                && !is_virtual
                && i.is_up()
                && net.links_at(di, &i.name).is_empty()
            {
                out.push(LintFinding {
                    severity: Severity::Info,
                    code: "iface-unlinked",
                    device: d.name.clone(),
                    message: format!(
                        "{} is addressed and up but has no modeled link (external hand-off?)",
                        i.name
                    ),
                });
            }
        }
    }
}

fn unresolvable_statics(net: &Network, out: &mut Vec<LintFinding>) {
    for (_, d) in net.devices() {
        for r in &d.config.static_routes {
            let NextHop::Ip(gw) = r.next_hop else {
                continue;
            };
            let direct = d
                .config
                .interfaces
                .iter()
                .any(|i| i.is_up() && i.subnet().map(|s| s.contains(gw)).unwrap_or(false));
            if !direct {
                out.push(LintFinding {
                    severity: Severity::Warning,
                    code: "static-nh-indirect",
                    device: d.name.clone(),
                    message: format!(
                        "static route {} via {gw}: next hop is not on a connected subnet",
                        r.prefix
                    ),
                });
            }
        }
    }
}

fn hosts_without_gateway(net: &Network, out: &mut Vec<LintFinding>) {
    for (_, d) in net.devices() {
        if d.kind != DeviceKind::Host {
            continue;
        }
        if !d.config.static_routes.iter().any(|r| r.prefix.is_default()) {
            out.push(LintFinding {
                severity: Severity::Warning,
                code: "host-no-gateway",
                device: d.name.clone(),
                message: "host has no default route".to_string(),
            });
        }
    }
}

fn ospf_networks_matching_nothing(net: &Network, out: &mut Vec<LintFinding>) {
    for (_, d) in net.devices() {
        let Some(o) = &d.config.ospf else { continue };
        for n in &o.networks {
            let hits = d
                .config
                .interfaces
                .iter()
                .any(|i| i.address.map(|a| n.prefix.contains(a.ip)).unwrap_or(false));
            if !hits {
                out.push(LintFinding {
                    severity: Severity::Warning,
                    code: "ospf-network-unmatched",
                    device: d.name.clone(),
                    message: format!(
                        "ospf network {} area {} matches no interface",
                        n.prefix, n.area
                    ),
                });
            }
        }
    }
}

fn subnet_split_across_domains(net: &Network, out: &mut Vec<LintFinding>) {
    // Two up L3 endpoints sharing a subnet should share a broadcast
    // domain; otherwise one side can never ARP the other.
    let l2 = L2Domains::compute(net);
    let mut by_subnet: HashMap<crate::ip::Prefix, Vec<(String, String, Option<usize>)>> =
        HashMap::new();
    for (di, d) in net.devices() {
        for i in &d.config.interfaces {
            if !i.is_up() || i.name.starts_with("Lo") {
                continue;
            }
            if let Some(s) = i.subnet() {
                if s.len() == 32 {
                    continue;
                }
                by_subnet.entry(s).or_default().push((
                    d.name.clone(),
                    i.name.clone(),
                    l2.domain(di, &i.name),
                ));
            }
        }
    }
    for (subnet, members) in by_subnet {
        if members.len() < 2 {
            continue;
        }
        let domains: Vec<Option<usize>> = members.iter().map(|(_, _, d)| *d).collect();
        if domains.windows(2).any(|w| w[0] != w[1]) {
            out.push(LintFinding {
                severity: Severity::Warning,
                code: "subnet-split",
                device: members[0].0.clone(),
                message: format!(
                    "subnet {subnet} spans disjoint broadcast domains: {:?}",
                    members
                        .iter()
                        .map(|(d, i, _)| format!("{d}.{i}"))
                        .collect::<Vec<_>>()
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::Acl;
    use crate::gen::{enterprise_network, university_network};
    use crate::iface::Interface;

    #[test]
    fn evaluation_networks_lint_almost_clean() {
        for (g, expected_unlinked) in [(enterprise_network(), 1), (university_network(), 1)] {
            let findings = lint(&g.net);
            let errors: Vec<&LintFinding> = findings
                .iter()
                .filter(|f| f.severity == Severity::Error)
                .collect();
            assert!(errors.is_empty(), "{}: {errors:?}", g.meta.name);
            // Exactly the upstream hand-off is unlinked.
            let unlinked = findings
                .iter()
                .filter(|f| f.code == "iface-unlinked")
                .count();
            assert_eq!(unlinked, expected_unlinked, "{}", g.meta.name);
            let warnings: Vec<&LintFinding> = findings
                .iter()
                .filter(|f| f.severity == Severity::Warning)
                .collect();
            assert!(warnings.is_empty(), "{}: {warnings:?}", g.meta.name);
        }
    }

    #[test]
    fn missing_acl_reference_is_an_error() {
        let g = enterprise_network();
        let mut net = g.net;
        net.device_by_name_mut("acc1")
            .unwrap()
            .config
            .interface_mut("Gi0/0")
            .unwrap()
            .acl_in = Some("404".to_string());
        let findings = lint_at_least(&net, Severity::Error);
        assert!(findings
            .iter()
            .any(|f| f.code == "acl-ref-missing" && f.device == "acc1"));
    }

    #[test]
    fn duplicate_address_detected() {
        let g = enterprise_network();
        let mut net = g.net;
        // Give h2 the same address as h1.
        net.device_by_name_mut("h2")
            .unwrap()
            .config
            .interface_mut("eth0")
            .unwrap()
            .address = Some(crate::iface::InterfaceAddress::new(
            "10.1.1.10".parse().unwrap(),
            24,
        ));
        let findings = lint_at_least(&net, Severity::Error);
        assert!(
            findings.iter().any(|f| f.code == "addr-duplicate"),
            "{findings:?}"
        );
    }

    #[test]
    fn undeclared_vlan_warns() {
        let g = enterprise_network();
        let mut net = g.net;
        net.device_by_name_mut("acc3")
            .unwrap()
            .config
            .interface_mut("Gi0/2")
            .unwrap()
            .switchport = Some(SwitchPortMode::Access { vlan: 99 });
        let findings = lint(&net);
        assert!(findings
            .iter()
            .any(|f| f.code == "vlan-undeclared" && f.device == "acc3"));
    }

    #[test]
    fn ospf_issue_is_visible_to_the_linter_inverse() {
        // Adding a network statement that matches nothing warns; the OSPF
        // *issue* (removing one) is the behavioral twin of this.
        let g = enterprise_network();
        let mut net = g.net;
        net.device_by_name_mut("dist2")
            .unwrap()
            .config
            .ospf
            .as_mut()
            .unwrap()
            .networks
            .push(crate::proto::OspfNetwork {
                prefix: "203.0.113.0/24".parse().unwrap(),
                area: 0,
            });
        let findings = lint(&net);
        assert!(findings
            .iter()
            .any(|f| f.code == "ospf-network-unmatched" && f.device == "dist2"));
    }

    #[test]
    fn host_without_gateway_warns() {
        let g = enterprise_network();
        let mut net = g.net;
        net.device_by_name_mut("h5")
            .unwrap()
            .config
            .static_routes
            .clear();
        let findings = lint(&net);
        assert!(findings
            .iter()
            .any(|f| f.code == "host-no-gateway" && f.device == "h5"));
    }

    #[test]
    fn unused_acl_is_info() {
        let g = enterprise_network();
        let mut net = g.net;
        net.device_by_name_mut("core1")
            .unwrap()
            .config
            .upsert_acl(Acl::new("150"));
        let findings = lint(&net);
        let f = findings
            .iter()
            .find(|f| f.code == "acl-unused" && f.device == "core1")
            .expect("unused acl found");
        assert_eq!(f.severity, Severity::Info);
    }

    #[test]
    fn split_subnet_detected() {
        // Two routers share 10.42.0.0/24 but are not connected at L2.
        let g = enterprise_network();
        let mut net = g.net;
        for (dev, last) in [("core1", 1u8), ("acc3", 2u8)] {
            net.device_by_name_mut(dev)
                .unwrap()
                .config
                .upsert_interface(
                    Interface::new("Gi0/7").with_address(Ipv4Addr::new(10, 42, 0, last), 24),
                );
        }
        let findings = lint(&net);
        assert!(
            findings.iter().any(|f| f.code == "subnet-split"),
            "{findings:?}"
        );
    }

    #[test]
    fn findings_are_stable_and_deduped() {
        // Seed several defect classes at once; repeated lint runs must
        // produce identical, duplicate-free reports even though several
        // passes iterate HashMaps internally.
        let g = enterprise_network();
        let mut net = g.net;
        net.device_by_name_mut("acc1")
            .unwrap()
            .config
            .interface_mut("Gi0/0")
            .unwrap()
            .acl_in = Some("404".to_string());
        net.device_by_name_mut("core1")
            .unwrap()
            .config
            .upsert_acl(Acl::new("150"));
        net.device_by_name_mut("h5")
            .unwrap()
            .config
            .static_routes
            .clear();
        let first = lint(&net);
        for _ in 0..8 {
            assert_eq!(lint(&net), first, "lint order must be deterministic");
        }
        // Sorted by (severity desc, device, code, message) and deduped.
        for w in first.windows(2) {
            let key = |f: &LintFinding| {
                (
                    std::cmp::Reverse(f.severity),
                    f.device.clone(),
                    f.code,
                    f.message.clone(),
                )
            };
            assert!(key(&w[0]) < key(&w[1]), "unsorted or duplicate: {w:?}");
        }
    }

    #[test]
    fn findings_sort_errors_first() {
        let g = enterprise_network();
        let mut net = g.net;
        net.device_by_name_mut("acc1")
            .unwrap()
            .config
            .interface_mut("Gi0/0")
            .unwrap()
            .acl_in = Some("404".to_string());
        let findings = lint(&net);
        assert_eq!(findings[0].severity, Severity::Error);
        let text = findings[0].to_string();
        assert!(text.contains("acl-ref-missing"));
    }
}
