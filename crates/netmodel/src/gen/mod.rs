//! Network generators.
//!
//! The paper evaluates on "two example networks with real configurations: an
//! enterprise network and a university network" (Table 1). We cannot ship
//! the original Batfish configuration archives, so these generators
//! synthesize networks with the same structure — device counts, link counts,
//! address-plan style, ACL posture, protocol mix, and configuration volume —
//! which is all the experiments depend on.

mod enterprise;
mod random;
mod university;

pub use enterprise::enterprise_network;
pub use random::{random_network, RandomNetConfig};
pub use university::university_network;

use crate::ip::Prefix;
use crate::topology::Network;
use std::net::Ipv4Addr;

/// Metadata the experiments need about a generated network: who the
/// interesting endpoints are and how the policy miner should look at it.
#[derive(Debug, Clone)]
pub struct GenMeta {
    /// Short name used in reports ("enterprise", "university").
    pub name: String,
    /// Host-bearing subnets, `(label, prefix)`.
    pub host_subnets: Vec<(String, Prefix)>,
    /// The management workstation allowed to reach device loopbacks.
    pub mgmt_host: String,
    /// Hosts holding sensitive data (the paper's "sensitive host3").
    pub sensitive_hosts: Vec<String>,
    /// The main service host tickets tend to be about (paper's "web service
    /// running on server H").
    pub service_host: String,
    /// Router loopback addresses, `(device, addr)` — management targets.
    pub loopbacks: Vec<(String, Ipv4Addr)>,
    /// The border router carrying the upstream/ISP connection.
    pub border_router: String,
    /// The ISP-facing interface on the border router.
    pub upstream_iface: String,
    /// The ISP peering subnet currently configured.
    pub upstream_subnet: Prefix,
}

/// A generated network plus its experiment metadata.
#[derive(Debug, Clone)]
pub struct GeneratedNet {
    pub net: Network,
    pub meta: GenMeta,
}

/// Structural statistics in Table 1's columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    pub routers: usize,
    pub hosts: usize,
    pub links: usize,
    pub config_lines: usize,
}

/// Computes Table 1's structural columns for a network. Firewalls count as
/// routers (the paper's networks do not break them out).
pub fn net_stats(net: &Network) -> NetStats {
    use crate::device::DeviceKind;
    let mut routers = 0;
    let mut hosts = 0;
    for (_, d) in net.devices() {
        match d.kind {
            DeviceKind::Router | DeviceKind::Firewall | DeviceKind::Switch => routers += 1,
            DeviceKind::Host => hosts += 1,
        }
    }
    NetStats {
        routers,
        hosts,
        links: net.link_count(),
        config_lines: net.total_config_lines(),
    }
}

/// Standard operational boilerplate real configs carry (logging, ntp, vty
/// lines, snmp traps, archive, service flags). Contributes realism and
/// configuration volume — Table 1 counts "lines of configs", and real
/// device configs are mostly this matter — but no experiment interprets
/// these lines.
pub(crate) fn standard_globals(hostname: &str, ntp1: &str, log_host: &str) -> Vec<String> {
    let mut g: Vec<String> = vec![
        "version 15.2".to_string(),
        "service timestamps debug datetime msec".to_string(),
        "service timestamps log datetime msec".to_string(),
        "service password-encryption".to_string(),
        "service tcp-keepalives-in".to_string(),
        "service tcp-keepalives-out".to_string(),
        "boot-start-marker".to_string(),
        "boot-end-marker".to_string(),
        "clock timezone UTC 0 0".to_string(),
        "no ip domain-lookup".to_string(),
        format!("ip domain-name {hostname}.example.net"),
        "ip cef".to_string(),
        "no ipv6 cef".to_string(),
        "no ip source-route".to_string(),
        "no ip bootp server".to_string(),
        "no ip http server".to_string(),
        "no ip http secure-server".to_string(),
        "ip ssh version 2".to_string(),
        "ip ssh authentication-retries 3".to_string(),
        "login block-for 120 attempts 3 within 60".to_string(),
        "login on-failure log".to_string(),
        "archive".to_string(),
        "log config".to_string(),
        "logging enable".to_string(),
        "notify syslog contenttype plaintext".to_string(),
        "hidekeys".to_string(),
        "logging buffered 16384 informational".to_string(),
        "logging console critical".to_string(),
        "logging trap informational".to_string(),
        "logging facility local6".to_string(),
        format!("logging host {log_host}"),
        "logging source-interface Lo0".to_string(),
        format!("snmp-server location rack-site-{hostname}"),
        "snmp-server contact noc@example.net".to_string(),
        "snmp-server enable traps snmp authentication linkdown linkup coldstart".to_string(),
        "snmp-server enable traps config".to_string(),
        "snmp-server enable traps envmon".to_string(),
        "snmp-server enable traps ospf state-change".to_string(),
        "snmp-server enable traps bgp".to_string(),
        format!("ntp server {ntp1}"),
        format!("ntp server {ntp1} prefer"),
        "ntp update-calendar".to_string(),
        "banner motd ^ Authorized access only. Activity is monitored. ^".to_string(),
        "line con 0".to_string(),
        "exec-timeout 5 0".to_string(),
        "logging synchronous".to_string(),
        "line aux 0".to_string(),
        "no exec".to_string(),
        "line vty 0 4".to_string(),
        "transport input ssh".to_string(),
        "exec-timeout 10 0".to_string(),
        "access-class 199 in".to_string(),
        "line vty 5 15".to_string(),
        "transport input none".to_string(),
        "spanning-tree mode rapid-pvst".to_string(),
        "scheduler allocate 20000 1000".to_string(),
    ];
    g.shrink_to_fit();
    g
}

/// Additional security/AAA boilerplate carried by the enterprise network's
/// devices (the paper's enterprise configs are denser per device than the
/// university's: 1394 lines / 18 devices vs 2146 / 30).
pub(crate) fn enterprise_extra_globals(tacacs: &str) -> Vec<String> {
    vec![
        "aaa new-model".to_string(),
        "aaa authentication login default group tacacs+ local".to_string(),
        "aaa authentication enable default group tacacs+ enable".to_string(),
        "aaa authorization console".to_string(),
        "aaa authorization exec default group tacacs+ local".to_string(),
        "aaa authorization commands 15 default group tacacs+ local".to_string(),
        "aaa accounting exec default start-stop group tacacs+".to_string(),
        "aaa accounting commands 15 default start-stop group tacacs+".to_string(),
        "aaa accounting network default start-stop group tacacs+".to_string(),
        "aaa session-id common".to_string(),
        format!("tacacs-server host {tacacs} timeout 5"),
        "tacacs-server directed-request".to_string(),
        "ip dhcp snooping".to_string(),
        "ip dhcp snooping vlan 30-31".to_string(),
        "ip arp inspection vlan 30-31".to_string(),
        "errdisable recovery cause all".to_string(),
        "errdisable recovery interval 300".to_string(),
        "udld enable".to_string(),
        "vtp mode transparent".to_string(),
        "port-channel load-balance src-dst-ip".to_string(),
        "mls qos".to_string(),
        "class-map match-any VOICE".to_string(),
        "match dscp ef".to_string(),
        "class-map match-any CRITICAL-DATA".to_string(),
        "match dscp af31".to_string(),
        "policy-map EDGE-QOS".to_string(),
        "class VOICE".to_string(),
        "priority percent 20".to_string(),
        "class CRITICAL-DATA".to_string(),
        "bandwidth percent 40".to_string(),
        "class class-default".to_string(),
        "fair-queue".to_string(),
        "ip flow-export version 9".to_string(),
        "ip flow-export destination 10.1.1.251 9996".to_string(),
        "ip flow-cache timeout active 1".to_string(),
    ]
}

/// Host-side boilerplate (hosts are thin: an address, a gateway, a few
/// agent settings).
pub(crate) fn host_globals(hostname: &str, ntp: &str, log_host: &str) -> Vec<String> {
    vec![
        "service timestamps log datetime msec".to_string(),
        format!("ip domain-name {hostname}.example.net"),
        format!("logging host {log_host}"),
        format!("ntp server {ntp}"),
        "no ip http server".to_string(),
        "ip ssh version 2".to_string(),
        "line vty 0 4".to_string(),
        "transport input ssh".to_string(),
        "exec-timeout 10 0".to_string(),
        "banner motd ^ managed endpoint ^".to_string(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enterprise_matches_table1_structure() {
        let g = enterprise_network();
        let s = net_stats(&g.net);
        assert_eq!(s.routers, 9, "Table 1: 9 routers");
        assert_eq!(s.hosts, 9, "Table 1: 9 hosts");
        assert_eq!(s.links, 22, "Table 1: 22 links");
        // Paper: 1394 lines. Synthetic configs land in the same regime.
        assert!(
            (1300..=1500).contains(&s.config_lines),
            "enterprise config lines {} out of range",
            s.config_lines
        );
    }

    #[test]
    fn university_matches_table1_structure() {
        let g = university_network();
        let s = net_stats(&g.net);
        assert_eq!(s.routers, 13, "Table 1: 13 routers");
        assert_eq!(s.hosts, 17, "Table 1: 17 hosts");
        assert_eq!(s.links, 92, "Table 1: 92 links");
        // Paper: 2146 lines.
        assert!(
            (2000..=2300).contains(&s.config_lines),
            "university config lines {} out of range",
            s.config_lines
        );
    }

    #[test]
    fn generated_networks_are_connected() {
        for g in [enterprise_network(), university_network()] {
            assert_eq!(g.net.components().len(), 1, "{} disconnected", g.meta.name);
        }
    }

    #[test]
    fn meta_references_exist() {
        for g in [enterprise_network(), university_network()] {
            assert!(g.net.device_by_name(&g.meta.mgmt_host).is_some());
            assert!(g.net.device_by_name(&g.meta.service_host).is_some());
            assert!(g.net.device_by_name(&g.meta.border_router).is_some());
            for h in &g.meta.sensitive_hosts {
                assert!(g.net.device_by_name(h).is_some());
            }
            for (d, ip) in &g.meta.loopbacks {
                let dev = g.net.device_by_name(d).expect("loopback device");
                assert!(dev.addresses().contains(ip), "{d} missing loopback {ip}");
            }
            let border = g.net.device_by_name(&g.meta.border_router).unwrap();
            assert!(border.config.interface(&g.meta.upstream_iface).is_some());
        }
    }

    #[test]
    fn every_generated_config_round_trips() {
        for g in [enterprise_network(), university_network()] {
            for (_, d) in g.net.devices() {
                let text = crate::printer::print_config(&d.config);
                let parsed = crate::parser::parse_config(&text)
                    .unwrap_or_else(|e| panic!("{}: {e}", d.name));
                assert_eq!(parsed, d.config, "round-trip mismatch for {}", d.name);
            }
        }
    }

    #[test]
    fn secrets_present_for_sanitizer_to_strip() {
        let g = enterprise_network();
        let with_secrets = g
            .net
            .devices()
            .filter(|(_, d)| !d.config.secrets.is_empty())
            .count();
        assert!(with_secrets >= 9, "routers should carry credentials");
    }
}
