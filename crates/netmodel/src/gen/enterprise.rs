//! The *enterprise* evaluation network (Table 1, row 1): 9 routers, 9
//! hosts, 22 links.
//!
//! Topology (router-router links: 13; host links: 9; total 22):
//!
//! ```text
//!            198.51.100.0/30 (ISP)
//!                  |
//!                bdr1 ---- fw1 ==== {core1, core2}   fw1 also owns the DMZ
//!                           |          |    X    |        (10.2.1.0/24, srv1)
//!                          DMZ      {dist1 -- dist2}
//!                                    /   \   /   \
//!                                 acc1   acc2    acc3 (VLAN 30)
//!                                 LAN1   LAN2    LAN3
//!                                h1-h3  h4-h6   h7,h8
//! ```
//!
//! Security posture (drives the mined policy set of ~21):
//! - client LANs may initiate to the DMZ, nothing may initiate into a
//!   client LAN (ICMP excepted, for troubleshooting);
//! - only the management workstation `h1` is *specified* to reach router
//!   loopbacks;
//! - `h7` (finance) is a sensitive host: the LAN3 inbound lockdown is the
//!   constraint the paper's malicious-technician example violates.

use super::{standard_globals, GenMeta, GeneratedNet};
use crate::acl::{Acl, AclAction, AclEntry, PortMatch, Proto};
use crate::builder::NetBuilder;
use crate::device::{Device, DeviceKind};
use crate::iface::Interface;
use crate::ip::Prefix;
use crate::proto::{BgpConfig, StaticRoute};
use crate::topology::Network;
use crate::vlan::{SwitchPortMode, Vlan};
use std::net::Ipv4Addr;

const ROUTERS: [&str; 9] = [
    "bdr1", "fw1", "core1", "core2", "dist1", "dist2", "acc1", "acc2", "acc3",
];

fn p(s: &str) -> Prefix {
    s.parse().expect("valid prefix literal")
}

fn ip(s: &str) -> Ipv4Addr {
    s.parse().expect("valid ip literal")
}

/// Builds the enterprise network and its experiment metadata.
pub fn enterprise_network() -> GeneratedNet {
    let mut b = NetBuilder::new();

    // Devices.
    b.router("bdr1");
    b.firewall("fw1");
    for r in &ROUTERS[2..] {
        b.router(r);
    }

    // Router-router fabric (13 links).
    for (x, y) in [
        ("bdr1", "fw1"),
        ("fw1", "core1"),
        ("fw1", "core2"),
        ("core1", "core2"),
        ("core1", "dist1"),
        ("core1", "dist2"),
        ("core2", "dist1"),
        ("core2", "dist2"),
        ("dist1", "dist2"),
        ("dist1", "acc1"),
        ("dist1", "acc2"),
        ("dist2", "acc2"),
        ("dist2", "acc3"),
    ] {
        b.connect(x, y);
    }

    // Client LANs on acc1/acc2 (6 host links).
    let acc1_lan = b.lan("acc1", p("10.1.1.0/24"), &["h1", "h2", "h3"]);
    let acc2_lan = b.lan("acc2", p("10.1.2.0/24"), &["h4", "h5", "h6"]);

    // DMZ on fw1 (1 host link).
    let dmz_iface = b.lan("fw1", p("10.2.1.0/24"), &["srv1"]);

    // LAN3 on acc3 is VLAN-switched: SVI Vlan30 is the gateway; h7/h8 hang
    // off access ports (2 host links). This is where the paper's "VLAN
    // issue" lives.
    {
        let acc3 = b.device_mut("acc3");
        acc3.config.vlans.insert(30, Vlan::named(30, "eng"));
        acc3.config.vlans.insert(31, Vlan::named(31, "quarantine"));
        acc3.config
            .upsert_interface(Interface::new("Vlan30").with_address(ip("10.1.3.1"), 24));
        for port in ["Gi0/2", "Gi0/3"] {
            acc3.config.upsert_interface(
                Interface::new(port).with_switchport(SwitchPortMode::Access { vlan: 30 }),
            );
        }
    }
    for (host, addr, port) in [("h7", "10.1.3.10", "Gi0/2"), ("h8", "10.1.3.11", "Gi0/3")] {
        let mut h = Device::new(host, DeviceKind::Host);
        h.config
            .upsert_interface(Interface::new("eth0").with_address(ip(addr), 24));
        h.config
            .static_routes
            .push(StaticRoute::default_via(ip("10.1.3.1")));
        let net: &mut Network = {
            // NetBuilder has no raw add_device; go through device_mut trick.
            b.adopt_host(h);
            b.network_mut()
        };
        net.add_link("acc3", port, host, "eth0")
            .expect("fresh link");
    }

    // Upstream / ISP attachment on bdr1.
    {
        let bdr1 = b.device_mut("bdr1");
        bdr1.config.upsert_interface(
            Interface::new("Gi0/9")
                .with_address(ip("198.51.100.2"), 30)
                .with_description("uplink to ISP AS174")
                .with_acl_in("110"),
        );
        bdr1.config
            .static_routes
            .push(StaticRoute::default_via(ip("198.51.100.1")));
        bdr1.config.bgp = Some(
            BgpConfig::new(65001)
                .with_router_id(ip("10.0.0.1"))
                .neighbor(ip("198.51.100.1"), 174)
                .network(p("10.0.0.0/8")),
        );
        bdr1.config
            .secrets
            .bgp_passwords
            .insert("198.51.100.1".to_string(), "BgP-s3cr3t-174".to_string());
        // Anti-spoofing on the upstream edge.
        bdr1.config.upsert_acl(
            Acl::new("110")
                .entry(AclEntry::simple(
                    AclAction::Deny,
                    Proto::Any,
                    p("10.0.0.0/8"),
                    Prefix::DEFAULT,
                ))
                .entry(AclEntry::simple(
                    AclAction::Deny,
                    Proto::Any,
                    p("192.168.0.0/16"),
                    Prefix::DEFAULT,
                ))
                .entry(AclEntry::permit_any()),
        );
    }

    // Loopbacks: 10.0.0.N/32 in ROUTERS order.
    let mut loopbacks = Vec::new();
    for (i, r) in ROUTERS.iter().enumerate() {
        let lo = Ipv4Addr::new(10, 0, 0, (i + 1) as u8);
        b.device_mut(r)
            .config
            .upsert_interface(Interface::new("Lo0").with_address(lo, 32));
        loopbacks.push((r.to_string(), lo));
    }

    // DMZ gate on fw1: all client LANs may initiate to the DMZ; everything
    // else into the DMZ is dropped. Figure 6's misconfiguration flips one
    // of these permits to a deny.
    {
        let fw1 = b.device_mut("fw1");
        let mut acl = Acl::new("100");
        for lan in ["10.1.1.0/24", "10.1.2.0/24", "10.1.3.0/24"] {
            acl.entries.push(AclEntry::simple(
                AclAction::Permit,
                Proto::Any,
                p(lan),
                p("10.2.1.0/24"),
            ));
        }
        // Operational niceties: monitoring pings and NTP from the mgmt LAN.
        acl.entries.push(AclEntry::simple(
            AclAction::Permit,
            Proto::Icmp,
            Prefix::DEFAULT,
            p("10.2.1.0/24"),
        ));
        let mut ntp = AclEntry::simple(
            AclAction::Permit,
            Proto::Udp,
            p("10.1.1.0/24"),
            p("10.2.1.0/24"),
        );
        ntp.dst_port = PortMatch::Eq(123);
        acl.entries.push(ntp);
        acl.entries.push(AclEntry::deny_any());
        fw1.config.upsert_acl(acl);
        fw1.config
            .interface_mut(&dmz_iface)
            .expect("dmz iface")
            .acl_out = Some("100".to_string());
        fw1.config.secrets.ipsec_psks.insert(
            "203.0.113.77".to_string(),
            "PSK-branch-vpn-Hq7x".to_string(),
        );
    }

    // Client-LAN lockdown: nothing initiates *into* a client LAN except
    // ICMP (troubleshooting). Applied outbound on each LAN gateway port.
    let lockdown = |acl_name: &str| {
        Acl::new(acl_name)
            .entry(AclEntry::simple(
                AclAction::Permit,
                Proto::Icmp,
                Prefix::DEFAULT,
                Prefix::DEFAULT,
            ))
            .entry(AclEntry::deny_any())
    };
    for (dev, iface) in [
        ("acc1", acc1_lan.as_str()),
        ("acc2", acc2_lan.as_str()),
        ("acc3", "Vlan30"),
    ] {
        let d = b.device_mut(dev);
        d.config.upsert_acl(lockdown("120"));
        d.config.interface_mut(iface).expect("lan iface").acl_out = Some("120".to_string());
    }

    // OSPF across the fabric, then mark edge ports passive and enable
    // static redistribution at the border (so the default route floods).
    b.enable_ospf_all(0);
    for (dev, passives) in [
        ("bdr1", vec!["Gi0/9", "Lo0"]),
        ("fw1", vec![dmz_iface.as_str(), "Lo0"]),
        ("core1", vec!["Lo0"]),
        ("core2", vec!["Lo0"]),
        ("dist1", vec!["Lo0"]),
        ("dist2", vec!["Lo0"]),
        ("acc1", vec![acc1_lan.as_str(), "Lo0"]),
        ("acc2", vec![acc2_lan.as_str(), "Lo0"]),
        ("acc3", vec!["Vlan30", "Lo0"]),
    ] {
        let d = b.device_mut(dev);
        let o = d.config.ospf.as_mut().expect("ospf enabled above");
        for pi in passives {
            o.passive_interfaces.push(pi.to_string());
        }
    }
    {
        let o = b.device_mut("bdr1").config.ospf.as_mut().expect("ospf");
        o.redistribute_static = true;
    }
    for (i, r) in ROUTERS.iter().enumerate() {
        let rid = Ipv4Addr::new(10, 0, 0, (i + 1) as u8);
        b.device_mut(r)
            .config
            .ospf
            .as_mut()
            .expect("ospf")
            .router_id = Some(rid);
    }

    // Credentials and operational boilerplate on every router.
    for (i, r) in ROUTERS.iter().enumerate() {
        let d = b.device_mut(r);
        d.config.secrets.enable_secret = Some(format!("$1$ent{:02}$kJh2nQv9", i + 1));
        d.config
            .secrets
            .users
            .insert("netops".to_string(), format!("$1$usr{:02}$mW3pLx7c", i + 1));
        d.config
            .secrets
            .snmp_communities
            .push(format!("entRO-{:02}-priv", i + 1));
        d.config.raw_globals = standard_globals(r, "10.1.1.250", "10.1.1.251");
        d.config
            .raw_globals
            .extend(super::enterprise_extra_globals("10.1.1.252"));
        // OSPF adjacency authentication on fabric ports.
        let fabric_ifaces: Vec<String> = d
            .config
            .interfaces
            .iter()
            .filter(|x| {
                x.name.starts_with("Gi0/")
                    && x.switchport.is_none()
                    && x.subnet().map(|s| s.len() == 30).unwrap_or(false)
            })
            .map(|x| x.name.clone())
            .collect();
        for fi in fabric_ifaces {
            if d.config
                .interface(&fi)
                .and_then(|x| x.subnet())
                .map(|s| s.addr().octets()[0])
                == Some(10)
            {
                d.config
                    .secrets
                    .ospf_auth_keys
                    .insert(fi, "ospfK3y-fabric-2041".to_string());
            }
        }
    }

    // Hosts get light boilerplate too.
    for h in ["h1", "h2", "h3", "h4", "h5", "h6", "h7", "h8", "srv1"] {
        let d = b.device_mut(h);
        d.config.raw_globals = super::host_globals(h, "10.1.1.250", "10.1.1.251");
    }

    let meta = GenMeta {
        name: "enterprise".to_string(),
        host_subnets: vec![
            ("LAN1".to_string(), p("10.1.1.0/24")),
            ("LAN2".to_string(), p("10.1.2.0/24")),
            ("LAN3".to_string(), p("10.1.3.0/24")),
            ("DMZ".to_string(), p("10.2.1.0/24")),
        ],
        mgmt_host: "h1".to_string(),
        sensitive_hosts: vec!["h7".to_string()],
        service_host: "srv1".to_string(),
        loopbacks,
        border_router: "bdr1".to_string(),
        upstream_iface: "Gi0/9".to_string(),
        upstream_subnet: p("198.51.100.0/30"),
    };

    GeneratedNet {
        net: b.build(),
        meta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vlan30_plumbing() {
        let g = enterprise_network();
        let acc3 = g.net.device_by_name("acc3").unwrap();
        assert!(acc3.config.vlans.contains_key(&30));
        assert!(acc3.config.vlans.contains_key(&31));
        let svi = acc3.config.interface("Vlan30").unwrap();
        assert_eq!(svi.subnet().unwrap(), p("10.1.3.0/24"));
        assert_eq!(
            acc3.config.interface("Gi0/2").unwrap().switchport,
            Some(SwitchPortMode::Access { vlan: 30 })
        );
    }

    #[test]
    fn dmz_acl_guards_the_server_lan() {
        let g = enterprise_network();
        let fw1 = g.net.device_by_name("fw1").unwrap();
        let acl = &fw1.config.acls["100"];
        assert_eq!(
            acl.evaluate(Proto::Tcp, ip("10.1.1.10"), ip("10.2.1.10"), 40000, 80),
            AclAction::Permit
        );
        // DMZ cannot be reached from the p2p fabric or outside.
        assert_eq!(
            acl.evaluate(Proto::Tcp, ip("198.51.100.1"), ip("10.2.1.10"), 40000, 80),
            AclAction::Deny
        );
    }

    #[test]
    fn client_lan_lockdown_allows_only_icmp() {
        let g = enterprise_network();
        let acc1 = g.net.device_by_name("acc1").unwrap();
        let acl = &acc1.config.acls["120"];
        assert_eq!(
            acl.evaluate(Proto::Icmp, ip("10.1.2.10"), ip("10.1.1.10"), 0, 0),
            AclAction::Permit
        );
        assert_eq!(
            acl.evaluate(Proto::Tcp, ip("10.1.2.10"), ip("10.1.1.10"), 40000, 80),
            AclAction::Deny
        );
    }

    #[test]
    fn border_has_default_and_bgp() {
        let g = enterprise_network();
        let bdr1 = g.net.device_by_name("bdr1").unwrap();
        assert!(bdr1
            .config
            .static_routes
            .iter()
            .any(|r| r.prefix.is_default()));
        assert_eq!(bdr1.config.bgp.as_ref().unwrap().asn, 65001);
        assert!(bdr1.config.ospf.as_ref().unwrap().redistribute_static);
    }
}
