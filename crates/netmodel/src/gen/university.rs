//! The *university* evaluation network (Table 1, row 2): 13 routers, 17
//! hosts, 92 links.
//!
//! A campus fabric: two cores, four distribution routers in a ring, and
//! seven edge routers (six departments plus a datacenter). Redundancy is
//! heavy — parallel port-channel-style links between fabric neighbors —
//! which is how a 13-router campus reaches 75 router-router links (plus 17
//! host links = 92).
//!
//! Security posture (drives the mined policy set of ~175):
//! - academic departments (cs, ee, math, bio) form an open mesh;
//! - everyone may use the library subnet, the library initiates nowhere;
//! - the dorm subnet is isolated from departments;
//! - `www` is open to all, `file` to academic departments only, and `db`
//!   (the sensitive host) accepts nothing from outside the server LAN;
//! - the `www`/`file` servers may initiate into department LANs
//!   (monitoring/backup).

use super::{standard_globals, GenMeta, GeneratedNet};
use crate::acl::{Acl, AclAction, AclEntry, Proto};
use crate::builder::NetBuilder;
use crate::iface::Interface;
use crate::ip::Prefix;
use crate::proto::{BgpConfig, StaticRoute};
use std::net::Ipv4Addr;

const CORES: [&str; 2] = ["core1", "core2"];
const DISTS: [&str; 4] = ["dist1", "dist2", "dist3", "dist4"];
const EDGES: [&str; 7] = ["cs1", "ee1", "math1", "bio1", "lib1", "dorm1", "dc1"];

fn p(s: &str) -> Prefix {
    s.parse().expect("valid prefix literal")
}

fn ip(s: &str) -> Ipv4Addr {
    s.parse().expect("valid ip literal")
}

/// Builds the university network and its experiment metadata.
pub fn university_network() -> GeneratedNet {
    let mut b = NetBuilder::new().with_p2p_pool(p("172.31.0.0/16"));

    for r in CORES.iter().chain(&DISTS).chain(&EDGES) {
        b.router(r);
    }

    // Base fabric adjacencies (27): core pair, dists dual-homed to cores,
    // dist ring, edges dual-homed to two dists.
    let mut adjacencies: Vec<(&str, &str)> = vec![("core1", "core2")];
    for d in &DISTS {
        adjacencies.push((d, "core1"));
        adjacencies.push((d, "core2"));
    }
    adjacencies.extend([
        ("dist1", "dist2"),
        ("dist2", "dist3"),
        ("dist3", "dist4"),
        ("dist4", "dist1"),
    ]);
    let edge_homes = [
        ("cs1", "dist1", "dist2"),
        ("ee1", "dist1", "dist2"),
        ("math1", "dist2", "dist3"),
        ("bio1", "dist2", "dist3"),
        ("lib1", "dist3", "dist4"),
        ("dorm1", "dist3", "dist4"),
        ("dc1", "dist4", "dist1"),
    ];
    for (e, d1, d2) in edge_homes {
        adjacencies.push((e, d1));
        adjacencies.push((e, d2));
    }
    debug_assert_eq!(adjacencies.len(), 27);

    // Physical links: every adjacency doubled (port-channel redundancy),
    // plus a third strand on the first 21 — 27*2 + 21 = 75 router links.
    for (x, y) in &adjacencies {
        b.connect(x, y);
        b.connect(x, y);
    }
    for (x, y) in adjacencies.iter().take(21) {
        b.connect(x, y);
    }

    // Department and server LANs (17 host links).
    let lans: [(&str, &str, Vec<&str>); 7] = [
        ("cs1", "172.16.1.0/24", vec!["cs-h1", "cs-h2", "cs-h3"]),
        ("ee1", "172.16.2.0/24", vec!["ee-h1", "ee-h2"]),
        ("math1", "172.16.3.0/24", vec!["ma-h1", "ma-h2"]),
        ("bio1", "172.16.4.0/24", vec!["bi-h1", "bi-h2"]),
        ("lib1", "172.16.5.0/24", vec!["li-h1", "li-h2"]),
        ("dorm1", "172.16.6.0/24", vec!["do-h1", "do-h2", "do-h3"]),
        ("dc1", "172.16.10.0/24", vec!["www", "file", "db"]),
    ];
    let mut lan_iface = std::collections::HashMap::new();
    for (r, subnet, hosts) in &lans {
        let gi = b.lan(r, p(subnet), hosts);
        lan_iface.insert(*r, gi);
    }

    const ACADEMIC: [&str; 4] = [
        "172.16.1.0/24",
        "172.16.2.0/24",
        "172.16.3.0/24",
        "172.16.4.0/24",
    ];
    const DORM: &str = "172.16.6.0/24";
    const LIB: &str = "172.16.5.0/24";
    let www = "172.16.10.10/32";
    let file = "172.16.10.11/32";

    // Server-LAN gate on dc1 (ACL 130).
    {
        let mut acl = Acl::new("130");
        for src in ACADEMIC {
            acl.entries.push(AclEntry::simple(
                AclAction::Permit,
                Proto::Any,
                p(src),
                p(www),
            ));
            acl.entries.push(AclEntry::simple(
                AclAction::Permit,
                Proto::Any,
                p(src),
                p(file),
            ));
        }
        acl.entries.push(AclEntry::simple(
            AclAction::Permit,
            Proto::Any,
            p(DORM),
            p(www),
        ));
        acl.entries.push(AclEntry::simple(
            AclAction::Permit,
            Proto::Any,
            p(LIB),
            p(www),
        ));
        acl.entries.push(AclEntry::deny_any());
        let dc1 = b.device_mut("dc1");
        dc1.config.upsert_acl(acl);
        dc1.config
            .interface_mut(&lan_iface["dc1"])
            .expect("dc lan")
            .acl_out = Some("130".to_string());
    }

    // Department LAN gates (ACL 140 on each edge LAN port). Each academic
    // department and the library keep one *locked* host (a lab controller /
    // staff terminal) that nothing outside the LAN may initiate to — these
    // are the network's sensitive hosts alongside `db`.
    let dept_acl = |own: &str, locked: Option<&str>, peers: &[&str]| {
        let mut acl = Acl::new("140");
        if let Some(l) = locked {
            acl.entries.push(AclEntry::simple(
                AclAction::Deny,
                Proto::Any,
                Prefix::DEFAULT,
                p(l),
            ));
        }
        for peer in peers {
            acl.entries.push(AclEntry::simple(
                AclAction::Permit,
                Proto::Any,
                p(peer),
                p(own),
            ));
        }
        // The monitoring/backup servers may initiate inward.
        acl.entries.push(AclEntry::simple(
            AclAction::Permit,
            Proto::Any,
            p(www),
            p(own),
        ));
        acl.entries.push(AclEntry::simple(
            AclAction::Permit,
            Proto::Any,
            p(file),
            p(own),
        ));
        acl.entries.push(AclEntry::deny_any());
        acl
    };
    let academic_peers =
        |own: &str| -> Vec<&str> { ACADEMIC.iter().copied().filter(|s| *s != own).collect() };
    for (r, own, locked) in [
        ("cs1", "172.16.1.0/24", "172.16.1.12/32"),
        ("ee1", "172.16.2.0/24", "172.16.2.11/32"),
        ("math1", "172.16.3.0/24", "172.16.3.11/32"),
        ("bio1", "172.16.4.0/24", "172.16.4.11/32"),
    ] {
        let acl = dept_acl(own, Some(locked), &academic_peers(own));
        let d = b.device_mut(r);
        d.config.upsert_acl(acl);
        d.config.interface_mut(&lan_iface[r]).expect("lan").acl_out = Some("140".to_string());
    }
    {
        // Library: open to every campus user subnet, staff terminal locked.
        let acl = dept_acl(
            LIB,
            Some("172.16.5.11/32"),
            &[ACADEMIC[0], ACADEMIC[1], ACADEMIC[2], ACADEMIC[3], DORM],
        );
        let d = b.device_mut("lib1");
        d.config.upsert_acl(acl);
        d.config
            .interface_mut(&lan_iface["lib1"])
            .expect("lan")
            .acl_out = Some("140".to_string());
    }
    {
        // Dorm: nothing initiates inward except the servers.
        let acl = dept_acl(DORM, None, &[]);
        let d = b.device_mut("dorm1");
        d.config.upsert_acl(acl);
        d.config
            .interface_mut(&lan_iface["dorm1"])
            .expect("lan")
            .acl_out = Some("140".to_string());
    }

    // Upstream (Internet2) on core1.
    {
        let core1 = b.device_mut("core1");
        core1.config.upsert_interface(
            Interface::new("Gi0/19")
                .with_address(ip("192.0.2.2"), 30)
                .with_description("uplink to regional exchange"),
        );
        core1
            .config
            .static_routes
            .push(StaticRoute::default_via(ip("192.0.2.1")));
        core1.config.bgp = Some(
            BgpConfig::new(64520)
                .with_router_id(ip("10.100.0.1"))
                .neighbor(ip("192.0.2.1"), 11537)
                .network(p("172.16.0.0/12")),
        );
        core1
            .config
            .secrets
            .bgp_passwords
            .insert("192.0.2.1".to_string(), "uni-BgP-k3y".to_string());
    }

    // Loopbacks 10.100.0.N/32 and OSPF everywhere.
    let all: Vec<&str> = CORES.iter().chain(&DISTS).chain(&EDGES).copied().collect();
    let mut loopbacks = Vec::new();
    for (i, r) in all.iter().enumerate() {
        let lo = Ipv4Addr::new(10, 100, 0, (i + 1) as u8);
        b.device_mut(r)
            .config
            .upsert_interface(Interface::new("Lo0").with_address(lo, 32));
        loopbacks.push((r.to_string(), lo));
    }
    b.enable_ospf_all(0);
    for (i, r) in all.iter().enumerate() {
        let d = b.device_mut(r);
        let o = d.config.ospf.as_mut().expect("enabled above");
        o.router_id = Some(Ipv4Addr::new(10, 100, 0, (i + 1) as u8));
        o.passive_interfaces.push("Lo0".to_string());
        if let Some(gi) = lan_iface.get(r) {
            o.passive_interfaces.push(gi.clone());
        }
        if *r == "core1" {
            o.passive_interfaces.push("Gi0/19".to_string());
            o.redistribute_static = true;
        }
    }

    // Credentials and boilerplate.
    for (i, r) in all.iter().enumerate() {
        let d = b.device_mut(r);
        d.config.secrets.enable_secret = Some(format!("$1$uni{:02}$Qz8vTr4e", i + 1));
        d.config
            .secrets
            .users
            .insert("noc".to_string(), format!("$1$noc{:02}$Ba5cXw2d", i + 1));
        d.config
            .secrets
            .snmp_communities
            .push(format!("uniRO-{:02}", i + 1));
        d.config.raw_globals = standard_globals(r, "172.16.10.10", "172.16.1.251");
    }
    for (_, _, hosts) in &lans {
        for h in hosts {
            let d = b.device_mut(h);
            d.config.raw_globals = super::host_globals(h, "172.16.10.10", "172.16.1.251");
        }
    }

    let meta = GenMeta {
        name: "university".to_string(),
        host_subnets: vec![
            ("CS".to_string(), p("172.16.1.0/24")),
            ("EE".to_string(), p("172.16.2.0/24")),
            ("MATH".to_string(), p("172.16.3.0/24")),
            ("BIO".to_string(), p("172.16.4.0/24")),
            ("LIB".to_string(), p("172.16.5.0/24")),
            ("DORM".to_string(), p("172.16.6.0/24")),
            ("DC".to_string(), p("172.16.10.0/24")),
        ],
        mgmt_host: "cs-h1".to_string(),
        sensitive_hosts: vec![
            "cs-h3".to_string(),
            "ee-h2".to_string(),
            "ma-h2".to_string(),
            "bi-h2".to_string(),
            "li-h2".to_string(),
            "db".to_string(),
        ],
        service_host: "www".to_string(),
        loopbacks,
        border_router: "core1".to_string(),
        upstream_iface: "Gi0/19".to_string(),
        upstream_subnet: p("192.0.2.0/30"),
    };

    GeneratedNet {
        net: b.build(),
        meta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_budget_is_exactly_92() {
        let g = university_network();
        assert_eq!(g.net.link_count(), 92);
    }

    #[test]
    fn server_gate_policy_matrix() {
        let g = university_network();
        let acl = &g.net.device_by_name("dc1").unwrap().config.acls["130"];
        let t = |src: &str, dst: &str| acl.evaluate(Proto::Tcp, ip(src), ip(dst), 44000, 80);
        assert_eq!(t("172.16.1.10", "172.16.10.10"), AclAction::Permit); // cs -> www
        assert_eq!(t("172.16.1.10", "172.16.10.11"), AclAction::Permit); // cs -> file
        assert_eq!(t("172.16.1.10", "172.16.10.12"), AclAction::Deny); // cs -> db
        assert_eq!(t("172.16.6.10", "172.16.10.10"), AclAction::Permit); // dorm -> www
        assert_eq!(t("172.16.6.10", "172.16.10.11"), AclAction::Deny); // dorm -> file
        assert_eq!(t("172.16.5.10", "172.16.10.11"), AclAction::Deny); // lib -> file
    }

    #[test]
    fn dorm_is_locked_down_but_servers_reach_in() {
        let g = university_network();
        let acl = &g.net.device_by_name("dorm1").unwrap().config.acls["140"];
        let t = |src: &str| acl.evaluate(Proto::Tcp, ip(src), ip("172.16.6.10"), 44000, 22);
        assert_eq!(t("172.16.1.10"), AclAction::Deny); // cs -> dorm
        assert_eq!(t("172.16.10.10"), AclAction::Permit); // www -> dorm
        assert_eq!(t("172.16.10.12"), AclAction::Deny); // db -> dorm
    }

    #[test]
    fn academic_mesh_open() {
        let g = university_network();
        let acl = &g.net.device_by_name("ee1").unwrap().config.acls["140"];
        assert_eq!(
            acl.evaluate(Proto::Tcp, ip("172.16.1.10"), ip("172.16.2.10"), 44000, 22),
            AclAction::Permit
        );
        assert_eq!(
            acl.evaluate(Proto::Tcp, ip("172.16.6.10"), ip("172.16.2.10"), 44000, 22),
            AclAction::Deny
        );
    }
}
