//! Random network generation for property-based tests and scalability
//! benches: a random router tree plus extra chords, with LANs sprinkled on
//! leaf routers. Always produces a *valid* connected network.

use super::GeneratedNet;
use crate::builder::NetBuilder;
use crate::ip::Prefix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for [`random_network`].
#[derive(Debug, Clone, Copy)]
pub struct RandomNetConfig {
    pub routers: usize,
    /// Extra non-tree links added on top of the spanning tree.
    pub extra_links: usize,
    /// Number of LANs (each on a distinct router, round-robin).
    pub lans: usize,
    /// Hosts per LAN.
    pub hosts_per_lan: usize,
}

impl Default for RandomNetConfig {
    fn default() -> Self {
        RandomNetConfig {
            routers: 8,
            extra_links: 4,
            lans: 3,
            hosts_per_lan: 2,
        }
    }
}

/// Generates a random, connected, OSPF-enabled network from `seed`.
/// The same seed always yields the same network.
pub fn random_network(seed: u64, cfg: RandomNetConfig) -> GeneratedNet {
    assert!(cfg.routers >= 2, "need at least two routers");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetBuilder::new();

    let names: Vec<String> = (0..cfg.routers).map(|i| format!("r{}", i + 1)).collect();
    for n in &names {
        b.router(n);
    }

    // Random spanning tree: attach each router to a random predecessor.
    for i in 1..cfg.routers {
        let j = rng.random_range(0..i);
        b.connect(&names[i], &names[j]);
    }
    // Extra chords.
    for _ in 0..cfg.extra_links {
        let i = rng.random_range(0..cfg.routers);
        let j = rng.random_range(0..cfg.routers);
        if i != j {
            b.connect(&names[i], &names[j]);
        }
    }

    // LANs with hosts.
    for l in 0..cfg.lans {
        let r = &names[l % cfg.routers];
        let subnet: Prefix = format!("10.{}.0.0/24", 50 + l).parse().expect("valid");
        let hosts: Vec<String> = (0..cfg.hosts_per_lan)
            .map(|h| format!("lan{}h{}", l + 1, h + 1))
            .collect();
        let refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
        b.lan(r, subnet, &refs);
    }

    b.enable_ospf_all(0);

    let meta = super::GenMeta {
        name: format!("random-{seed}"),
        host_subnets: (0..cfg.lans)
            .map(|l| {
                (
                    format!("LAN{}", l + 1),
                    format!("10.{}.0.0/24", 50 + l).parse().expect("valid"),
                )
            })
            .collect(),
        mgmt_host: if cfg.lans > 0 {
            "lan1h1".to_string()
        } else {
            names[0].clone()
        },
        sensitive_hosts: vec![],
        service_host: if cfg.lans > 0 {
            "lan1h1".to_string()
        } else {
            names[0].clone()
        },
        loopbacks: vec![],
        border_router: names[0].clone(),
        upstream_iface: String::new(),
        upstream_subnet: "0.0.0.0/0".parse().expect("valid"),
    };

    GeneratedNet {
        net: b.build(),
        meta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = random_network(42, RandomNetConfig::default());
        let b = random_network(42, RandomNetConfig::default());
        assert_eq!(a.net.device_count(), b.net.device_count());
        assert_eq!(a.net.link_count(), b.net.link_count());
        // Spot-check a device's printed config is identical.
        let pa = crate::printer::print_config(&a.net.device_by_name("r1").unwrap().config);
        let pb = crate::printer::print_config(&b.net.device_by_name("r1").unwrap().config);
        assert_eq!(pa, pb);
    }

    #[test]
    fn always_connected() {
        for seed in 0..20 {
            let g = random_network(seed, RandomNetConfig::default());
            assert_eq!(g.net.components().len(), 1, "seed {seed} disconnected");
        }
    }

    #[test]
    fn scales_to_larger_sizes() {
        let g = random_network(
            7,
            RandomNetConfig {
                routers: 60,
                extra_links: 30,
                lans: 10,
                hosts_per_lan: 3,
            },
        );
        assert_eq!(g.net.device_count(), 60 + 30);
        assert_eq!(g.net.components().len(), 1);
    }
}
