//! Network interfaces: the resource the paper's running examples act on
//! ("bringing a network interface up/down", `{allow(ip, r1)}`).

use crate::ip::Prefix;
use crate::vlan::SwitchPortMode;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Re-exported alias so callers can say `SwitchMode::Access { .. }`.
pub type SwitchMode = SwitchPortMode;

/// A single interface on a device.
///
/// Interfaces carry L3 addressing (router/host ports), L2 switchport
/// configuration (switch ports), the in/out ACL bindings, and an
/// administrative state — the `shutdown` knob used both by the Figure 8/9
/// issue sweep ("we create an issue by bringing down each interface") and by
/// technicians debugging.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interface {
    /// Interface name, e.g. `GigabitEthernet0/1` or `eth0`.
    pub name: String,
    /// L3 address + mask, if routed.
    pub address: Option<InterfaceAddress>,
    /// `false` once a `shutdown` has been issued.
    pub enabled: bool,
    /// L2 switchport mode (switch ports only).
    pub switchport: Option<SwitchPortMode>,
    /// Inbound ACL name (`ip access-group X in`).
    pub acl_in: Option<String>,
    /// Outbound ACL name (`ip access-group X out`).
    pub acl_out: Option<String>,
    /// Explicit OSPF cost (`ip ospf cost N`); default cost applies if unset.
    pub ospf_cost: Option<u32>,
    /// Nominal bandwidth in kbit/s, used for default OSPF costs.
    pub bandwidth_kbps: u64,
    /// Free-text description.
    pub description: Option<String>,
}

/// An interface's L3 address (`ip address A M`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterfaceAddress {
    pub ip: Ipv4Addr,
    pub prefix_len: u8,
}

impl InterfaceAddress {
    /// Builds an interface address; `prefix_len` must be ≤ 32.
    pub fn new(ip: Ipv4Addr, prefix_len: u8) -> Self {
        assert!(prefix_len <= 32, "prefix length {prefix_len} exceeds 32");
        InterfaceAddress { ip, prefix_len }
    }

    /// The connected subnet this address lives in.
    pub fn subnet(&self) -> Prefix {
        Prefix::new(self.ip, self.prefix_len).expect("validated at construction")
    }
}

impl Interface {
    /// A new, enabled interface with no addressing (10 Mb/s default
    /// bandwidth, matching classic IOS defaults).
    pub fn new(name: impl Into<String>) -> Self {
        Interface {
            name: name.into(),
            address: None,
            enabled: true,
            switchport: None,
            acl_in: None,
            acl_out: None,
            ospf_cost: None,
            bandwidth_kbps: 10_000,
            description: None,
        }
    }

    /// Builder: assign an L3 address.
    pub fn with_address(mut self, ip: Ipv4Addr, prefix_len: u8) -> Self {
        self.address = Some(InterfaceAddress::new(ip, prefix_len));
        self
    }

    /// Builder: make this a switchport.
    pub fn with_switchport(mut self, mode: SwitchPortMode) -> Self {
        self.switchport = Some(mode);
        self
    }

    /// Builder: bind an inbound ACL.
    pub fn with_acl_in(mut self, acl: impl Into<String>) -> Self {
        self.acl_in = Some(acl.into());
        self
    }

    /// Builder: bind an outbound ACL.
    pub fn with_acl_out(mut self, acl: impl Into<String>) -> Self {
        self.acl_out = Some(acl.into());
        self
    }

    /// Builder: set a description.
    pub fn with_description(mut self, d: impl Into<String>) -> Self {
        self.description = Some(d.into());
        self
    }

    /// Builder: set an explicit OSPF cost.
    pub fn with_ospf_cost(mut self, c: u32) -> Self {
        self.ospf_cost = Some(c);
        self
    }

    /// Builder: administratively disable (`shutdown`).
    pub fn shutdown(mut self) -> Self {
        self.enabled = false;
        self
    }

    /// The connected subnet, if the interface is routed.
    pub fn subnet(&self) -> Option<Prefix> {
        self.address.map(|a| a.subnet())
    }

    /// Whether this interface can carry traffic (admin up).
    pub fn is_up(&self) -> bool {
        self.enabled
    }

    /// Effective OSPF cost: explicit cost if set, else
    /// `reference_bandwidth / bandwidth` (min 1) — the IOS formula.
    pub fn effective_ospf_cost(&self, reference_kbps: u64) -> u32 {
        if let Some(c) = self.ospf_cost {
            return c.max(1);
        }
        let bw = self.bandwidth_kbps.max(1);
        ((reference_kbps / bw).max(1)).min(u32::MAX as u64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn builder_chain() {
        let i = Interface::new("Gi0/0")
            .with_address(Ipv4Addr::new(10, 0, 0, 1), 24)
            .with_acl_in("101")
            .with_description("to r2");
        assert_eq!(i.name, "Gi0/0");
        assert_eq!(i.subnet().unwrap().to_string(), "10.0.0.0/24");
        assert_eq!(i.acl_in.as_deref(), Some("101"));
        assert!(i.is_up());
    }

    #[test]
    fn shutdown_marks_down() {
        let i = Interface::new("Gi0/1").shutdown();
        assert!(!i.is_up());
    }

    #[test]
    fn default_ospf_cost_from_bandwidth() {
        let mut i = Interface::new("Gi0/0");
        i.bandwidth_kbps = 100_000; // 100 Mb/s
        assert_eq!(i.effective_ospf_cost(100_000), 1);
        i.bandwidth_kbps = 10_000; // 10 Mb/s
        assert_eq!(i.effective_ospf_cost(100_000), 10);
    }

    #[test]
    fn explicit_ospf_cost_wins() {
        let i = Interface::new("Gi0/0").with_ospf_cost(55);
        assert_eq!(i.effective_ospf_cost(100_000), 55);
    }

    #[test]
    fn cost_never_zero() {
        let mut i = Interface::new("Gi0/0");
        i.bandwidth_kbps = 1_000_000_000; // faster than reference
        assert_eq!(i.effective_ospf_cost(100_000), 1);
        let j = Interface::new("Gi0/1").with_ospf_cost(0);
        assert_eq!(j.effective_ospf_cost(100_000), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds 32")]
    fn bad_prefix_len_panics() {
        InterfaceAddress::new(Ipv4Addr::new(1, 2, 3, 4), 40);
    }
}
