//! # heimdall-netmodel
//!
//! The network-model substrate for the Heimdall reproduction.
//!
//! This crate defines everything needed to *describe* a network the way the
//! paper's evaluation does: IPv4 prefixes and wildcard masks, devices with
//! interfaces and credentials, access-control lists, VLANs, static/OSPF/BGP
//! configuration, a Cisco-IOS-like configuration text parser and printer
//! (so that "lines of configs" in Table 1 is a meaningful, measurable
//! quantity), a structured configuration diff (the unit of change that the
//! policy enforcer verifies and schedules), and generators that synthesize
//! the paper's two evaluation networks (enterprise and university) plus
//! random networks for property-based testing.
//!
//! Higher layers build on this crate:
//! - `heimdall-routing` converges control planes over these configs,
//! - `heimdall-dataplane` forwards flows over the converged state,
//! - `heimdall-twin` slices and emulates [`topology::Network`]s,
//! - `heimdall-enforcer` verifies and schedules [`diff::ConfigChange`]s.
//!
//! ```
//! use heimdall_netmodel::builder::NetBuilder;
//!
//! // Two routers, a LAN, OSPF everywhere.
//! let mut b = NetBuilder::new();
//! b.router("r1").router("r2");
//! b.connect("r1", "r2");
//! b.lan("r2", "10.9.0.0/24".parse().unwrap(), &["h1"]);
//! b.enable_ospf_all(0);
//! let net = b.build();
//! assert_eq!(net.device_count(), 3);
//!
//! // Configs print as IOS-like text and round-trip through the parser.
//! let text = heimdall_netmodel::printer::print_config(
//!     &net.device_by_name("r2").unwrap().config,
//! );
//! let parsed = heimdall_netmodel::parser::parse_config(&text).unwrap();
//! assert_eq!(parsed, net.device_by_name("r2").unwrap().config);
//! ```

pub mod acl;
pub mod builder;
pub mod config;
pub mod device;
pub mod diff;
pub mod gen;
pub mod iface;
pub mod ip;
pub mod l2;
pub mod lint;
pub mod parser;
pub mod printer;
pub mod proto;
pub mod snapshot;
pub mod topology;
pub mod vlan;

pub use acl::{Acl, AclAction, AclEntry, PortMatch, Proto};
pub use config::{DeviceConfig, Secrets};
pub use device::{Device, DeviceKind};
pub use diff::{ConfigChange, ConfigDiff};
pub use iface::{Interface, SwitchMode};
pub use ip::Prefix;
pub use topology::{DeviceIdx, Link, Network};
