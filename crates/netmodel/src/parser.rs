//! An IOS-like configuration text parser — the inverse of
//! [`crate::printer::print_config`].
//!
//! The parser is a line-oriented state machine (global scope plus
//! `interface` / `vlan` / `router ospf` / `router bgp` stanzas), mirroring
//! how IOS configs actually nest. Unrecognized *global* lines are preserved
//! verbatim in [`DeviceConfig::raw_globals`] — real-world configs are full
//! of `ntp`, `logging`, and `line vty` matter that we must keep (Table 1
//! counts lines) but that no experiment interprets.

use crate::acl::{Acl, AclAction, AclEntry, PortMatch, Proto};
use crate::config::DeviceConfig;
use crate::iface::{Interface, InterfaceAddress};
use crate::ip::{parse_ip, wildcard_to_len, Prefix};
use crate::proto::{BgpConfig, NextHop, OspfConfig, OspfNetwork, StaticRoute};
use crate::vlan::{SwitchPortMode, Vlan};
use std::fmt;

/// A parse failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "config parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// The stanza the parser is currently inside.
enum Section {
    Global,
    Interface(usize),
    Vlan(u16),
    Ospf,
    Bgp,
    /// Inside an `ip access-list extended NAME` stanza.
    NamedAcl(String),
}

/// Parses IOS-like configuration text into a [`DeviceConfig`].
pub fn parse_config(text: &str) -> Result<DeviceConfig, ParseError> {
    let mut cfg = DeviceConfig::new("unnamed");
    let mut section = Section::Global;

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let err = |m: String| ParseError {
            line: lineno,
            message: m,
        };
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if line == "!" {
            section = Section::Global;
            continue;
        }
        if line == "end" {
            break;
        }

        let indented = line.starts_with(' ');
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.is_empty() {
            continue;
        }

        if indented {
            match section {
                Section::Interface(i) => {
                    parse_interface_line(&mut cfg, i, &tokens, line).map_err(err)?
                }
                Section::Vlan(id) => parse_vlan_line(&mut cfg, id, &tokens).map_err(err)?,
                Section::Ospf => parse_ospf_line(&mut cfg, &tokens).map_err(err)?,
                Section::Bgp => parse_bgp_line(&mut cfg, &tokens).map_err(err)?,
                Section::NamedAcl(ref name) => {
                    let entry = parse_acl_entry(&tokens).map_err(err)?;
                    cfg.acls
                        .entry(name.clone())
                        .or_insert_with(|| Acl::new(name.clone()))
                        .entries
                        .push(entry);
                }
                Section::Global => {
                    return Err(err(format!("indented line outside a stanza: {line:?}")))
                }
            }
            continue;
        }

        // Global-scope lines.
        match tokens.as_slice() {
            ["hostname", name] => cfg.hostname = name.to_string(),
            ["enable", "secret", "5", hash] => cfg.secrets.enable_secret = Some(hash.to_string()),
            ["username", user, "secret", "5", hash] => {
                cfg.secrets.users.insert(user.to_string(), hash.to_string());
            }
            ["snmp-server", "community", comm, "ro"] => {
                cfg.secrets.snmp_communities.push(comm.to_string());
            }
            ["crypto", "isakmp", "key", key, "address", peer] => {
                cfg.secrets
                    .ipsec_psks
                    .insert(peer.to_string(), key.to_string());
            }
            ["vlan", id] => {
                let id: u16 = id.parse().map_err(|_| err(format!("bad vlan id {id:?}")))?;
                cfg.vlans.entry(id).or_insert_with(|| Vlan::new(id));
                section = Section::Vlan(id);
            }
            ["interface", name] => {
                cfg.upsert_interface(Interface::new(*name));
                let idx = cfg
                    .interfaces
                    .iter()
                    .position(|i| i.name == *name)
                    .expect("just inserted");
                section = Section::Interface(idx);
            }
            ["router", "ospf", pid] => {
                let pid: u32 = pid
                    .parse()
                    .map_err(|_| err(format!("bad ospf pid {pid:?}")))?;
                cfg.ospf = Some(OspfConfig::new(pid));
                section = Section::Ospf;
            }
            ["router", "bgp", asn] => {
                let asn: u32 = asn
                    .parse()
                    .map_err(|_| err(format!("bad bgp asn {asn:?}")))?;
                cfg.bgp = Some(BgpConfig::new(asn));
                section = Section::Bgp;
            }
            ["ip", "route", rest @ ..] => {
                let r = parse_static_route(rest).map_err(err)?;
                cfg.static_routes.push(r);
            }
            ["access-list", name, rest @ ..] => {
                let entry = parse_acl_entry(rest).map_err(err)?;
                cfg.acls
                    .entry(name.to_string())
                    .or_insert_with(|| Acl::new(*name))
                    .entries
                    .push(entry);
            }
            ["ip", "access-list", "extended", name] => {
                cfg.acls
                    .entry(name.to_string())
                    .or_insert_with(|| Acl::new(*name));
                section = Section::NamedAcl(name.to_string());
            }
            _ => cfg.raw_globals.push(line.to_string()),
        }
    }
    Ok(cfg)
}

fn parse_interface_line(
    cfg: &mut DeviceConfig,
    idx: usize,
    tokens: &[&str],
    line: &str,
) -> Result<(), String> {
    let iface_name = cfg.interfaces[idx].name.clone();
    let iface = &mut cfg.interfaces[idx];
    match tokens {
        ["description", ..] => {
            iface.description = Some(line.trim_start()["description ".len()..].to_string());
        }
        ["bandwidth", n] => {
            iface.bandwidth_kbps = n.parse().map_err(|_| format!("bad bandwidth {n:?}"))?;
        }
        ["ip", "address", a, m] => {
            let ip = parse_ip(a).map_err(|e| e.to_string())?;
            let mask = parse_ip(m).map_err(|e| e.to_string())?;
            let len = crate::ip::netmask_to_len(mask).map_err(|e| e.to_string())?;
            iface.address = Some(InterfaceAddress::new(ip, len));
        }
        ["ip", "access-group", acl, "in"] => iface.acl_in = Some(acl.to_string()),
        ["ip", "access-group", acl, "out"] => iface.acl_out = Some(acl.to_string()),
        ["ip", "ospf", "cost", n] => {
            iface.ospf_cost = Some(n.parse().map_err(|_| format!("bad cost {n:?}"))?);
        }
        ["ip", "ospf", "authentication-key", key] => {
            cfg.secrets
                .ospf_auth_keys
                .insert(iface_name, key.to_string());
        }
        ["switchport", "mode", "access"] => {
            if !matches!(iface.switchport, Some(SwitchPortMode::Access { .. })) {
                iface.switchport = Some(SwitchPortMode::access_default());
            }
        }
        ["switchport", "access", "vlan", v] => {
            let vlan: u16 = v.parse().map_err(|_| format!("bad vlan {v:?}"))?;
            iface.switchport = Some(SwitchPortMode::Access { vlan });
        }
        ["switchport", "mode", "trunk"] => {
            if !matches!(iface.switchport, Some(SwitchPortMode::Trunk { .. })) {
                iface.switchport = Some(SwitchPortMode::Trunk { allowed: vec![] });
            }
        }
        ["switchport", "trunk", "allowed", "vlan", list] => {
            let allowed: Result<Vec<u16>, _> = list.split(',').map(str::parse).collect();
            iface.switchport = Some(SwitchPortMode::Trunk {
                allowed: allowed.map_err(|_| format!("bad vlan list {list:?}"))?,
            });
        }
        ["shutdown"] => iface.enabled = false,
        ["no", "shutdown"] => iface.enabled = true,
        _ => return Err(format!("unknown interface line: {line:?}")),
    }
    Ok(())
}

fn parse_vlan_line(cfg: &mut DeviceConfig, id: u16, tokens: &[&str]) -> Result<(), String> {
    match tokens {
        ["name", n] => {
            cfg.vlans
                .get_mut(&id)
                .expect("vlan section implies entry")
                .name = Some(n.to_string());
            Ok(())
        }
        _ => Err(format!("unknown vlan line: {tokens:?}")),
    }
}

fn parse_ospf_line(cfg: &mut DeviceConfig, tokens: &[&str]) -> Result<(), String> {
    let ospf = cfg.ospf.as_mut().expect("ospf section implies config");
    match tokens {
        ["router-id", rid] => {
            ospf.router_id = Some(parse_ip(rid).map_err(|e| e.to_string())?);
        }
        ["auto-cost", "reference-bandwidth", mbps] => {
            let m: u64 = mbps.parse().map_err(|_| format!("bad ref-bw {mbps:?}"))?;
            ospf.reference_bandwidth_kbps = m * 1000;
        }
        ["passive-interface", i] => ospf.passive_interfaces.push(i.to_string()),
        ["redistribute", "static", "subnets"] => ospf.redistribute_static = true,
        ["network", a, wild, "area", area] => {
            let addr = parse_ip(a).map_err(|e| e.to_string())?;
            let len = wildcard_to_len(parse_ip(wild).map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            let prefix = Prefix::new(addr, len).map_err(|e| e.to_string())?;
            let area: u32 = area.parse().map_err(|_| format!("bad area {area:?}"))?;
            ospf.networks.push(OspfNetwork { prefix, area });
        }
        _ => return Err(format!("unknown ospf line: {tokens:?}")),
    }
    Ok(())
}

fn parse_bgp_line(cfg: &mut DeviceConfig, tokens: &[&str]) -> Result<(), String> {
    match tokens {
        ["bgp", "router-id", rid] => {
            cfg.bgp.as_mut().unwrap().router_id = Some(parse_ip(rid).map_err(|e| e.to_string())?);
        }
        ["neighbor", a, "remote-as", asn] => {
            let addr = parse_ip(a).map_err(|e| e.to_string())?;
            let asn: u32 = asn.parse().map_err(|_| format!("bad asn {asn:?}"))?;
            cfg.bgp
                .as_mut()
                .unwrap()
                .neighbors
                .push(crate::proto::BgpNeighbor {
                    addr,
                    remote_as: asn,
                });
        }
        ["neighbor", a, "password", pw] => {
            cfg.secrets
                .bgp_passwords
                .insert(a.to_string(), pw.to_string());
        }
        ["neighbor", _, "default-originate"] => {
            cfg.bgp.as_mut().unwrap().default_originate = true;
        }
        ["network", a, "mask", m] => {
            let addr = parse_ip(a).map_err(|e| e.to_string())?;
            let mask = parse_ip(m).map_err(|e| e.to_string())?;
            let p = Prefix::with_netmask(addr, mask).map_err(|e| e.to_string())?;
            cfg.bgp.as_mut().unwrap().networks.push(p);
        }
        _ => return Err(format!("unknown bgp line: {tokens:?}")),
    }
    Ok(())
}

fn parse_static_route(rest: &[&str]) -> Result<StaticRoute, String> {
    let (a, m, nh, dist) = match rest {
        [a, m, nh] => (a, m, nh, None),
        [a, m, nh, d] => (a, m, nh, Some(*d)),
        _ => return Err(format!("bad ip route line: {rest:?}")),
    };
    let addr = parse_ip(a).map_err(|e| e.to_string())?;
    let mask = parse_ip(m).map_err(|e| e.to_string())?;
    let prefix = Prefix::with_netmask(addr, mask).map_err(|e| e.to_string())?;
    let next_hop = if *nh == "Null0" {
        NextHop::Discard
    } else {
        NextHop::Ip(parse_ip(nh).map_err(|e| e.to_string())?)
    };
    let distance = match dist {
        Some(d) => d.parse().map_err(|_| format!("bad distance {d:?}"))?,
        None => 1,
    };
    Ok(StaticRoute {
        prefix,
        next_hop,
        distance,
    })
}

/// Parses the tail of an `access-list` line (everything after the name).
pub fn parse_acl_entry(rest: &[&str]) -> Result<AclEntry, String> {
    let mut pos = 0;
    let next = |pos: &mut usize| -> Result<&str, String> {
        let t = rest.get(*pos).copied().ok_or("truncated acl entry")?;
        *pos += 1;
        Ok(t)
    };

    let action = match next(&mut pos)? {
        "permit" => AclAction::Permit,
        "deny" => AclAction::Deny,
        other => return Err(format!("bad acl action {other:?}")),
    };
    let proto =
        Proto::from_keyword(next(&mut pos)?).ok_or_else(|| "bad acl protocol".to_string())?;

    let parse_spec = |pos: &mut usize| -> Result<(Prefix, PortMatch), String> {
        let prefix = match next(pos)? {
            "any" => Prefix::DEFAULT,
            "host" => Prefix::host(parse_ip(next(pos)?).map_err(|e| e.to_string())?),
            a => {
                let addr = parse_ip(a).map_err(|e| e.to_string())?;
                let wild = parse_ip(next(pos)?).map_err(|e| e.to_string())?;
                let len = wildcard_to_len(wild).map_err(|e| e.to_string())?;
                Prefix::new(addr, len).map_err(|e| e.to_string())?
            }
        };
        let port = match rest.get(*pos).copied() {
            Some("eq") => {
                *pos += 1;
                PortMatch::Eq(next(pos)?.parse().map_err(|_| "bad port")?)
            }
            Some("range") => {
                *pos += 1;
                let lo = next(pos)?.parse().map_err(|_| "bad port")?;
                let hi = next(pos)?.parse().map_err(|_| "bad port")?;
                PortMatch::Range(lo, hi)
            }
            _ => PortMatch::Any,
        };
        Ok((prefix, port))
    };

    let (src, src_port) = parse_spec(&mut pos)?;
    let (dst, dst_port) = parse_spec(&mut pos)?;
    if pos != rest.len() {
        return Err(format!("trailing acl tokens: {:?}", &rest[pos..]));
    }
    Ok(AclEntry {
        action,
        proto,
        src,
        dst,
        src_port,
        dst_port,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_config;

    const SAMPLE: &str = "\
hostname r3
!
enable secret 5 $1$xyz
snmp-server community internal ro
!
logging host 10.0.0.50
!
vlan 10
 name staff
!
interface Gi0/0
 description uplink
 bandwidth 100000
 ip address 10.0.0.1 255.255.255.0
 ip access-group 101 in
 ip ospf cost 5
 no shutdown
!
interface Gi0/1
 switchport mode access
 switchport access vlan 10
 shutdown
!
router ospf 1
 router-id 3.3.3.3
 passive-interface Gi0/1
 network 10.0.0.0 0.0.0.255 area 0
!
router bgp 65001
 neighbor 10.0.0.2 remote-as 65002
 network 192.168.0.0 mask 255.255.0.0
!
ip route 0.0.0.0 0.0.0.0 10.0.0.2
ip route 172.16.0.0 255.240.0.0 Null0 250
!
access-list 101 permit tcp 10.0.0.0 0.0.0.255 any eq 80
access-list 101 deny ip any any
!
end
";

    #[test]
    fn parses_sample() {
        let c = parse_config(SAMPLE).unwrap();
        assert_eq!(c.hostname, "r3");
        assert_eq!(c.secrets.enable_secret.as_deref(), Some("$1$xyz"));
        assert_eq!(c.secrets.snmp_communities, vec!["internal".to_string()]);
        assert_eq!(c.raw_globals, vec!["logging host 10.0.0.50".to_string()]);
        assert_eq!(c.vlans[&10].name.as_deref(), Some("staff"));
        let g0 = c.interface("Gi0/0").unwrap();
        assert_eq!(g0.bandwidth_kbps, 100_000);
        assert_eq!(g0.acl_in.as_deref(), Some("101"));
        assert_eq!(g0.ospf_cost, Some(5));
        assert!(g0.is_up());
        let g1 = c.interface("Gi0/1").unwrap();
        assert!(!g1.is_up());
        assert_eq!(g1.switchport, Some(SwitchPortMode::Access { vlan: 10 }));
        let o = c.ospf.as_ref().unwrap();
        assert_eq!(o.router_id, Some("3.3.3.3".parse().unwrap()));
        assert_eq!(o.networks.len(), 1);
        let b = c.bgp.as_ref().unwrap();
        assert_eq!(b.asn, 65001);
        assert_eq!(b.networks[0].to_string(), "192.168.0.0/16");
        assert_eq!(c.static_routes.len(), 2);
        assert_eq!(c.static_routes[1].distance, 250);
        assert_eq!(c.static_routes[1].next_hop, NextHop::Discard);
        assert_eq!(c.acls["101"].entries.len(), 2);
    }

    #[test]
    fn round_trips_through_printer() {
        let c = parse_config(SAMPLE).unwrap();
        let printed = print_config(&c);
        let c2 = parse_config(&printed).unwrap();
        assert_eq!(c, c2);
    }

    #[test]
    fn acl_host_and_range() {
        let e = parse_acl_entry(&[
            "permit", "udp", "host", "1.2.3.4", "range", "100", "200", "any",
        ])
        .unwrap();
        assert_eq!(e.src.to_string(), "1.2.3.4/32");
        assert_eq!(e.src_port, PortMatch::Range(100, 200));
        assert_eq!(e.dst, Prefix::DEFAULT);
    }

    #[test]
    fn error_carries_line_number() {
        let bad = "hostname r1\ninterface Gi0/0\n ip address banana 255.255.255.0\n";
        let err = parse_config(bad).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn indented_line_outside_stanza_rejected() {
        assert!(parse_config(" ip address 1.2.3.4 255.255.255.0\n").is_err());
    }

    #[test]
    fn unknown_globals_preserved_in_order() {
        let c = parse_config("hostname h\nfoo bar\nbaz qux\nend\n").unwrap();
        assert_eq!(
            c.raw_globals,
            vec!["foo bar".to_string(), "baz qux".to_string()]
        );
    }

    #[test]
    fn trailing_acl_tokens_rejected() {
        assert!(parse_acl_entry(&["permit", "ip", "any", "any", "junk"]).is_err());
    }

    #[test]
    fn named_extended_acl_stanza_parses_and_round_trips() {
        let text = "\
hostname fw
!
ip access-list extended DMZ-IN
 permit tcp 10.1.0.0 0.0.255.255 host 10.2.1.10 eq 443
 permit icmp any any
 deny ip any any
!
interface Gi0/0
 ip access-group DMZ-IN in
 no shutdown
!
end
";
        let c = parse_config(text).unwrap();
        let acl = &c.acls["DMZ-IN"];
        assert_eq!(acl.entries.len(), 3);
        assert_eq!(acl.entries[0].dst.to_string(), "10.2.1.10/32");
        assert_eq!(
            c.interface("Gi0/0").unwrap().acl_in.as_deref(),
            Some("DMZ-IN")
        );
        // Round trip through the printer (which uses stanza style for
        // named ACLs).
        let printed = print_config(&c);
        assert!(printed.contains("ip access-list extended DMZ-IN"));
        assert!(printed.contains(" permit tcp 10.1.0.0 0.0.255.255 host 10.2.1.10 eq 443"));
        let again = parse_config(&printed).unwrap();
        assert_eq!(again, c);
    }

    #[test]
    fn mixed_numbered_and_named_acls_coexist() {
        let text = "\
hostname r
!
access-list 101 deny ip any any
ip access-list extended EDGE
 permit ip any any
!
end
";
        let c = parse_config(text).unwrap();
        assert_eq!(c.acls.len(), 2);
        let printed = print_config(&c);
        assert!(printed.contains("access-list 101 deny ip any any"));
        assert!(printed.contains("ip access-list extended EDGE"));
        assert_eq!(parse_config(&printed).unwrap(), c);
    }

    #[test]
    fn bgp_password_lands_in_secrets() {
        let text = "hostname r1\nrouter bgp 65000\n neighbor 10.0.0.2 remote-as 65001\n neighbor 10.0.0.2 password sekrit\n!\nend\n";
        let c = parse_config(text).unwrap();
        assert_eq!(c.secrets.bgp_passwords["10.0.0.2"], "sekrit");
    }
}
