//! Deterministic IOS-like configuration printing.
//!
//! Printing matters for three reasons: (1) Table 1 reports "lines of
//! configs", so line counts must be stable and realistic; (2) the enforcer's
//! audit trail records before/after config text; (3) technicians in the twin
//! read configs via `show running-config`, so the sanitizer is tested
//! against exactly this output.
//!
//! The format round-trips through [`crate::parser::parse_config`]:
//! `parse(print(c)) == c` (a property test enforces this).

use crate::acl::Acl;
use crate::config::DeviceConfig;
use crate::iface::Interface;
use crate::proto::NextHop;
use crate::vlan::SwitchPortMode;
use std::fmt::Write as _;

/// Prints a full device configuration as IOS-like text.
pub fn print_config(c: &DeviceConfig) -> String {
    let mut out = String::new();
    let w = &mut out;
    wl(w, &format!("hostname {}", c.hostname));
    sep(w);

    // --- Global security material -------------------------------------
    if let Some(s) = &c.secrets.enable_secret {
        wl(w, &format!("enable secret 5 {s}"));
    }
    for (user, secret) in &c.secrets.users {
        wl(w, &format!("username {user} secret 5 {secret}"));
    }
    for comm in &c.secrets.snmp_communities {
        wl(w, &format!("snmp-server community {comm} ro"));
    }
    for (peer, key) in &c.secrets.ipsec_psks {
        wl(w, &format!("crypto isakmp key {key} address {peer}"));
    }
    if !c.secrets.is_empty() {
        sep(w);
    }

    // --- Preserved global lines ----------------------------------------
    for line in &c.raw_globals {
        wl(w, line);
    }
    if !c.raw_globals.is_empty() {
        sep(w);
    }

    // --- VLAN database ---------------------------------------------------
    for vlan in c.vlans.values() {
        wl(w, &format!("vlan {}", vlan.id));
        if let Some(name) = &vlan.name {
            wl(w, &format!(" name {name}"));
        }
        sep(w);
    }

    // --- Interfaces ------------------------------------------------------
    for iface in &c.interfaces {
        print_interface(w, c, iface);
        sep(w);
    }

    // --- OSPF --------------------------------------------------------------
    if let Some(o) = &c.ospf {
        wl(w, &format!("router ospf {}", o.process_id));
        if let Some(rid) = o.router_id {
            wl(w, &format!(" router-id {rid}"));
        }
        if o.reference_bandwidth_kbps != 100_000 {
            wl(
                w,
                &format!(
                    " auto-cost reference-bandwidth {}",
                    o.reference_bandwidth_kbps / 1000
                ),
            );
        }
        for p in &o.passive_interfaces {
            wl(w, &format!(" passive-interface {p}"));
        }
        if o.redistribute_static {
            wl(w, " redistribute static subnets");
        }
        for n in &o.networks {
            wl(
                w,
                &format!(
                    " network {} {} area {}",
                    n.prefix.addr(),
                    n.prefix.wildcard(),
                    n.area
                ),
            );
        }
        sep(w);
    }

    // --- BGP --------------------------------------------------------------
    if let Some(b) = &c.bgp {
        wl(w, &format!("router bgp {}", b.asn));
        if let Some(rid) = b.router_id {
            wl(w, &format!(" bgp router-id {rid}"));
        }
        for n in &b.neighbors {
            wl(
                w,
                &format!(" neighbor {} remote-as {}", n.addr, n.remote_as),
            );
            if let Some(pw) = c.secrets.bgp_passwords.get(&n.addr.to_string()) {
                wl(w, &format!(" neighbor {} password {pw}", n.addr));
            }
            if b.default_originate {
                wl(w, &format!(" neighbor {} default-originate", n.addr));
            }
        }
        for p in &b.networks {
            wl(w, &format!(" network {} mask {}", p.addr(), p.netmask()));
        }
        sep(w);
    }

    // --- Static routes ------------------------------------------------------
    for r in &c.static_routes {
        let dest = match r.next_hop {
            NextHop::Ip(ip) => ip.to_string(),
            NextHop::Discard => "Null0".to_string(),
        };
        if r.distance == 1 {
            wl(
                w,
                &format!("ip route {} {} {dest}", r.prefix.addr(), r.prefix.netmask()),
            );
        } else {
            wl(
                w,
                &format!(
                    "ip route {} {} {dest} {}",
                    r.prefix.addr(),
                    r.prefix.netmask(),
                    r.distance
                ),
            );
        }
    }
    if !c.static_routes.is_empty() {
        sep(w);
    }

    // --- Access lists ---------------------------------------------------------
    for acl in c.acls.values() {
        print_acl(w, acl);
    }
    if !c.acls.is_empty() {
        sep(w);
    }

    wl(w, "end");
    out
}

/// Prints one interface stanza.
fn print_interface(w: &mut String, c: &DeviceConfig, iface: &Interface) {
    wl(w, &format!("interface {}", iface.name));
    if let Some(d) = &iface.description {
        wl(w, &format!(" description {d}"));
    }
    if iface.bandwidth_kbps != 10_000 {
        wl(w, &format!(" bandwidth {}", iface.bandwidth_kbps));
    }
    match &iface.switchport {
        Some(SwitchPortMode::Access { vlan }) => {
            wl(w, " switchport mode access");
            wl(w, &format!(" switchport access vlan {vlan}"));
        }
        Some(SwitchPortMode::Trunk { allowed }) => {
            wl(w, " switchport mode trunk");
            if !allowed.is_empty() {
                let list: Vec<String> = allowed.iter().map(|v| v.to_string()).collect();
                wl(
                    w,
                    &format!(" switchport trunk allowed vlan {}", list.join(",")),
                );
            }
        }
        None => {}
    }
    if let Some(a) = iface.address {
        wl(w, &format!(" ip address {} {}", a.ip, a.subnet().netmask()));
    }
    if let Some(acl) = &iface.acl_in {
        wl(w, &format!(" ip access-group {acl} in"));
    }
    if let Some(acl) = &iface.acl_out {
        wl(w, &format!(" ip access-group {acl} out"));
    }
    if let Some(cost) = iface.ospf_cost {
        wl(w, &format!(" ip ospf cost {cost}"));
    }
    if let Some(key) = c.secrets.ospf_auth_keys.get(&iface.name) {
        wl(w, &format!(" ip ospf authentication-key {key}"));
    }
    if iface.enabled {
        wl(w, " no shutdown");
    } else {
        wl(w, " shutdown");
    }
}

/// Prints one ACL: numbered style for numeric names (one `access-list`
/// line per entry), named-extended stanza style otherwise.
pub fn print_acl(w: &mut String, acl: &Acl) {
    if acl.name.chars().all(|c| c.is_ascii_digit()) {
        for e in &acl.entries {
            wl(w, &format!("access-list {} {e}", acl.name));
        }
    } else {
        wl(w, &format!("ip access-list extended {}", acl.name));
        for e in &acl.entries {
            wl(w, &format!(" {e}"));
        }
    }
}

/// Renders a single ACL to text (helper for `show` commands).
pub fn acl_to_string(acl: &Acl) -> String {
    let mut s = String::new();
    print_acl(&mut s, acl);
    s
}

fn wl(w: &mut String, line: &str) {
    let _ = writeln!(w, "{line}");
}

fn sep(w: &mut String) {
    let _ = writeln!(w, "!");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::{AclAction, AclEntry, PortMatch, Proto};
    use crate::ip::Prefix;
    use crate::proto::{OspfConfig, StaticRoute};
    use crate::vlan::Vlan;
    use std::net::Ipv4Addr;

    fn sample() -> DeviceConfig {
        let mut c = DeviceConfig::new("r1");
        c.secrets.enable_secret = Some("$1$abc".into());
        c.secrets.snmp_communities.push("public".into());
        c.raw_globals.push("ntp server 10.0.0.99".into());
        c.vlans.insert(10, Vlan::named(10, "staff"));
        c.upsert_interface(
            Interface::new("Gi0/0")
                .with_address(Ipv4Addr::new(10, 0, 0, 1), 24)
                .with_acl_in("101")
                .with_description("to r2"),
        );
        c.ospf = Some(
            OspfConfig::new(1)
                .with_router_id(Ipv4Addr::new(1, 1, 1, 1))
                .network("10.0.0.0/24".parse().unwrap(), 0),
        );
        c.static_routes
            .push(StaticRoute::default_via(Ipv4Addr::new(10, 0, 0, 2)));
        let mut e = AclEntry::simple(
            AclAction::Permit,
            Proto::Tcp,
            "10.0.0.0/24".parse().unwrap(),
            Prefix::DEFAULT,
        );
        e.dst_port = PortMatch::Eq(80);
        c.upsert_acl(Acl::new("101").entry(e).entry(AclEntry::deny_any()));
        c
    }

    #[test]
    fn prints_expected_lines() {
        let text = print_config(&sample());
        assert!(text.contains("hostname r1"));
        assert!(text.contains("enable secret 5 $1$abc"));
        assert!(text.contains("snmp-server community public ro"));
        assert!(text.contains("interface Gi0/0"));
        assert!(text.contains(" ip address 10.0.0.1 255.255.255.0"));
        assert!(text.contains(" ip access-group 101 in"));
        assert!(text.contains("router ospf 1"));
        assert!(text.contains(" network 10.0.0.0 0.0.0.255 area 0"));
        assert!(text.contains("ip route 0.0.0.0 0.0.0.0 10.0.0.2"));
        assert!(text.contains("access-list 101 permit tcp 10.0.0.0 0.0.0.255 any eq 80"));
        assert!(text.contains("access-list 101 deny ip any any"));
        assert!(text.ends_with("end\n"));
    }

    #[test]
    fn sanitized_output_has_no_secrets() {
        let c = sample();
        let text = print_config(&c.sanitized());
        for secret in c.secrets.all_values() {
            assert!(!text.contains(secret), "leaked secret {secret}");
        }
    }

    #[test]
    fn printing_is_deterministic() {
        let c = sample();
        assert_eq!(print_config(&c), print_config(&c));
    }

    #[test]
    fn shutdown_printed() {
        let mut c = DeviceConfig::new("r1");
        c.upsert_interface(Interface::new("Gi0/0").shutdown());
        let text = print_config(&c);
        assert!(text.contains(" shutdown"));
        assert!(!text.contains(" no shutdown"));
    }

    #[test]
    fn trunk_port_lines() {
        let mut c = DeviceConfig::new("sw1");
        c.upsert_interface(
            Interface::new("Gi0/1").with_switchport(SwitchPortMode::Trunk {
                allowed: vec![10, 20],
            }),
        );
        let text = print_config(&c);
        assert!(text.contains(" switchport mode trunk"));
        assert!(text.contains(" switchport trunk allowed vlan 10,20"));
    }
}
