//! L2 broadcast-domain computation.
//!
//! Everything above L2 — OSPF adjacency formation, ARP-style next-hop
//! resolution, host-to-gateway delivery — reduces to one question: *are two
//! L3 endpoints on the same broadcast domain?* This module answers it by
//! union-find over L2 port endpoints, handling routed ports, multi-access
//! (hub) segments, access/trunk switchports, and SVIs (`interface VlanN`).
//!
//! The paper's "VLAN issue" scenario exists precisely because of this
//! model: a host behind an access port moved into the wrong VLAN lands in a
//! different broadcast domain from its gateway SVI, so its traffic dies at
//! L2 even though every L3 object looks healthy.

use crate::topology::{DeviceIdx, Network};
use crate::vlan::{SwitchPortMode, VlanId};
use std::collections::HashMap;

/// One L2 port endpoint: a (device, interface) possibly specialized to a
/// VLAN (trunk ports have one endpoint per carried VLAN; SVIs have their
/// VLAN id; routed ports have `None`).
pub type L2Key = (DeviceIdx, String, Option<VlanId>);

/// Opaque identifier of a broadcast domain.
pub type DomainId = usize;

/// The broadcast domains of a network snapshot.
///
/// Recompute after any topology or interface change (cheap: linear in
/// ports + links).
#[derive(Debug, Clone)]
pub struct L2Domains {
    domain_of: HashMap<L2Key, DomainId>,
}

/// Parses `VlanN` interface names to their VLAN id.
pub fn svi_vlan(iface_name: &str) -> Option<VlanId> {
    iface_name.strip_prefix("Vlan")?.parse().ok()
}

/// Minimal union-find.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

impl L2Domains {
    /// Computes broadcast domains for the current interface/link state.
    pub fn compute(net: &Network) -> Self {
        // 1. Enumerate endpoint keys. Administratively-down ports do not
        //    bridge, so they get no keys at all.
        let mut keys: Vec<L2Key> = Vec::new();
        for (di, dev) in net.devices() {
            for iface in &dev.config.interfaces {
                if !iface.is_up() {
                    continue;
                }
                match (&iface.switchport, svi_vlan(&iface.name)) {
                    (Some(SwitchPortMode::Access { vlan }), _) => {
                        keys.push((di, iface.name.clone(), Some(*vlan)));
                    }
                    (Some(SwitchPortMode::Trunk { allowed }), _) => {
                        let carried: Vec<VlanId> = if allowed.is_empty() {
                            dev.config.vlans.keys().copied().collect()
                        } else {
                            allowed.clone()
                        };
                        for v in carried {
                            keys.push((di, iface.name.clone(), Some(v)));
                        }
                    }
                    (None, Some(v)) => keys.push((di, iface.name.clone(), Some(v))),
                    (None, None) => keys.push((di, iface.name.clone(), None)),
                }
            }
        }
        let mut dsu = Dsu::new(keys.len());

        // 2. Per-device VLAN fabric: all endpoints of a device in the same
        //    VLAN bridge together (switchports and the SVI).
        let mut fabric: HashMap<(DeviceIdx, VlanId), usize> = HashMap::new();
        for (i, (d, _, v)) in keys.iter().enumerate() {
            if let Some(v) = v {
                match fabric.get(&(*d, *v)) {
                    Some(&j) => dsu.union(i, j),
                    None => {
                        fabric.insert((*d, *v), i);
                    }
                }
            }
        }

        // 3. Physical links: unite compatible endpoint pairs across each up
        //    link.
        for link in net.links() {
            if !net.link_is_up(link) {
                continue;
            }
            let a_keys: Vec<usize> = keys
                .iter()
                .enumerate()
                .filter(|(_, (d, n, _))| *d == link.a && *n == link.a_iface)
                .map(|(i, _)| i)
                .collect();
            let b_keys: Vec<usize> = keys
                .iter()
                .enumerate()
                .filter(|(_, (d, n, _))| *d == link.b && *n == link.b_iface)
                .map(|(i, _)| i)
                .collect();
            for &ia in &a_keys {
                for &ib in &b_keys {
                    let va = keys[ia].2;
                    let vb = keys[ib].2;
                    // Routed<->routed, routed<->vlan (hosts on access
                    // ports), and tagged<->tagged with matching VLAN.
                    let compatible = match (va, vb) {
                        (None, _) | (_, None) => true,
                        (Some(x), Some(y)) => x == y,
                    };
                    if compatible {
                        dsu.union(ia, ib);
                    }
                }
            }
        }

        let mut domain_of = HashMap::with_capacity(keys.len());
        for (i, k) in keys.iter().enumerate() {
            let root = dsu.find(i);
            domain_of.insert(k.clone(), root);
        }
        L2Domains { domain_of }
    }

    /// The domain of an L3 endpoint: a routed port `(d, iface)` or an SVI
    /// (`VlanN` name). Returns `None` for down or unknown interfaces.
    pub fn domain(&self, d: DeviceIdx, iface: &str) -> Option<DomainId> {
        let vlan = svi_vlan(iface);
        self.domain_of.get(&(d, iface.to_string(), vlan)).copied()
    }

    /// The domain of a specific switchport endpoint in VLAN `v`.
    pub fn domain_vlan(&self, d: DeviceIdx, iface: &str, v: VlanId) -> Option<DomainId> {
        self.domain_of
            .get(&(d, iface.to_string(), Some(v)))
            .copied()
    }

    /// Whether two L3 endpoints share a broadcast domain.
    pub fn adjacent(&self, a: DeviceIdx, a_iface: &str, b: DeviceIdx, b_iface: &str) -> bool {
        match (self.domain(a, a_iface), self.domain(b, b_iface)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// All L3-capable endpoints (addressed, up interfaces) of `net` in the
    /// same domain as `(d, iface)`, excluding the endpoint itself.
    pub fn l3_peers(&self, net: &Network, d: DeviceIdx, iface: &str) -> Vec<(DeviceIdx, String)> {
        let Some(dom) = self.domain(d, iface) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (pi, peer) in net.devices() {
            for pif in &peer.config.interfaces {
                if pif.address.is_none() || !pif.is_up() {
                    continue;
                }
                if pi == d && pif.name == iface {
                    continue;
                }
                if self.domain(pi, &pif.name) == Some(dom) {
                    out.push((pi, pif.name.clone()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceKind};
    use crate::iface::Interface;
    use crate::vlan::Vlan;

    fn host(name: &str, ip: &str) -> Device {
        let mut d = Device::new(name, DeviceKind::Host);
        d.config
            .upsert_interface(Interface::new("eth0").with_address(ip.parse().unwrap(), 24));
        d
    }

    /// acc3-style device: SVI Vlan30 gateway + two access ports.
    fn l3_switch_net(h7_vlan: u16) -> Network {
        let mut n = Network::new();
        let mut sw = Device::new("acc3", DeviceKind::Router);
        sw.config.vlans.insert(30, Vlan::new(30));
        sw.config.vlans.insert(31, Vlan::new(31));
        sw.config.upsert_interface(
            Interface::new("Vlan30").with_address("10.1.3.1".parse().unwrap(), 24),
        );
        sw.config.upsert_interface(
            Interface::new("Gi0/2").with_switchport(SwitchPortMode::Access { vlan: h7_vlan }),
        );
        sw.config.upsert_interface(
            Interface::new("Gi0/3").with_switchport(SwitchPortMode::Access { vlan: 30 }),
        );
        n.add_device(sw).unwrap();
        n.add_device(host("h7", "10.1.3.10")).unwrap();
        n.add_device(host("h8", "10.1.3.11")).unwrap();
        n.add_link("acc3", "Gi0/2", "h7", "eth0").unwrap();
        n.add_link("acc3", "Gi0/3", "h8", "eth0").unwrap();
        n
    }

    #[test]
    fn host_reaches_svi_in_right_vlan() {
        let n = l3_switch_net(30);
        let l2 = L2Domains::compute(&n);
        assert!(l2.adjacent(n.idx_of("h7"), "eth0", n.idx_of("acc3"), "Vlan30"));
        assert!(l2.adjacent(n.idx_of("h7"), "eth0", n.idx_of("h8"), "eth0"));
    }

    #[test]
    fn wrong_vlan_isolates_host_from_gateway() {
        let n = l3_switch_net(31);
        let l2 = L2Domains::compute(&n);
        assert!(!l2.adjacent(n.idx_of("h7"), "eth0", n.idx_of("acc3"), "Vlan30"));
        assert!(!l2.adjacent(n.idx_of("h7"), "eth0", n.idx_of("h8"), "eth0"));
        // h8 is unaffected.
        assert!(l2.adjacent(n.idx_of("h8"), "eth0", n.idx_of("acc3"), "Vlan30"));
    }

    #[test]
    fn hub_segment_bridges_all_hosts() {
        // One router LAN port, three hosts (the lan() builder shape).
        let mut n = Network::new();
        let mut r = Device::new("r1", DeviceKind::Router);
        r.config.upsert_interface(
            Interface::new("Gi0/0").with_address("10.0.0.1".parse().unwrap(), 24),
        );
        n.add_device(r).unwrap();
        for (h, ip) in [
            ("h1", "10.0.0.10"),
            ("h2", "10.0.0.11"),
            ("h3", "10.0.0.12"),
        ] {
            n.add_device(host(h, ip)).unwrap();
            n.add_link("r1", "Gi0/0", h, "eth0").unwrap();
        }
        let l2 = L2Domains::compute(&n);
        assert!(l2.adjacent(n.idx_of("h1"), "eth0", n.idx_of("h2"), "eth0"));
        assert!(l2.adjacent(n.idx_of("h3"), "eth0", n.idx_of("r1"), "Gi0/0"));
    }

    #[test]
    fn trunk_carries_vlan_between_switches() {
        let mut n = Network::new();
        for sw in ["sw1", "sw2"] {
            let mut d = Device::new(sw, DeviceKind::Switch);
            d.config.vlans.insert(10, Vlan::new(10));
            d.config.vlans.insert(20, Vlan::new(20));
            d.config.upsert_interface(
                Interface::new("Gi0/1")
                    .with_switchport(SwitchPortMode::Trunk { allowed: vec![10] }),
            );
            d.config.upsert_interface(
                Interface::new("Gi0/2").with_switchport(SwitchPortMode::Access { vlan: 10 }),
            );
            d.config.upsert_interface(
                Interface::new("Gi0/3").with_switchport(SwitchPortMode::Access { vlan: 20 }),
            );
            n.add_device(d).unwrap();
        }
        n.add_link("sw1", "Gi0/1", "sw2", "Gi0/1").unwrap();
        n.add_device(host("a", "10.0.10.1")).unwrap();
        n.add_device(host("b", "10.0.10.2")).unwrap();
        n.add_device(host("c", "10.0.20.1")).unwrap();
        n.add_link("sw1", "Gi0/2", "a", "eth0").unwrap();
        n.add_link("sw2", "Gi0/2", "b", "eth0").unwrap();
        n.add_link("sw2", "Gi0/3", "c", "eth0").unwrap();
        let l2 = L2Domains::compute(&n);
        // VLAN 10 spans the trunk.
        assert!(l2.adjacent(n.idx_of("a"), "eth0", n.idx_of("b"), "eth0"));
        // VLAN 20 does not (trunk only allows 10).
        assert!(!l2.adjacent(n.idx_of("b"), "eth0", n.idx_of("c"), "eth0"));
    }

    #[test]
    fn down_port_leaves_domain() {
        let mut n = l3_switch_net(30);
        n.device_by_name_mut("acc3")
            .unwrap()
            .config
            .interface_mut("Gi0/2")
            .unwrap()
            .enabled = false;
        let l2 = L2Domains::compute(&n);
        assert!(!l2.adjacent(n.idx_of("h7"), "eth0", n.idx_of("acc3"), "Vlan30"));
    }

    #[test]
    fn l3_peers_enumerates_domain() {
        let n = l3_switch_net(30);
        let l2 = L2Domains::compute(&n);
        let peers = l2.l3_peers(&n, n.idx_of("acc3"), "Vlan30");
        assert_eq!(peers.len(), 2); // h7 and h8
    }

    #[test]
    fn svi_name_parsing() {
        assert_eq!(svi_vlan("Vlan30"), Some(30));
        assert_eq!(svi_vlan("Vlan1"), Some(1));
        assert_eq!(svi_vlan("Gi0/0"), None);
        assert_eq!(svi_vlan("Vlanx"), None);
    }
}
