//! Devices: routers, switches, firewalls, and endhosts.

use crate::config::DeviceConfig;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// The role a device plays in the network.
///
/// The kind matters to three consumers: the routing engine (only routers and
/// firewalls run routing protocols), the L2 data plane (switches forward by
/// VLAN), and the privilege model (the set of *available* commands per node —
/// the `A_n` term of the paper's attack-surface formula — depends on kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    Router,
    Switch,
    /// A router that additionally filters with ACLs by policy; modelled as a
    /// router whose ACLs are considered security-critical.
    Firewall,
    Host,
}

impl DeviceKind {
    /// Whether this device participates in L3 routing protocols.
    pub fn routes(&self) -> bool {
        matches!(self, DeviceKind::Router | DeviceKind::Firewall)
    }

    /// Whether this device forwards at L2 by VLAN.
    pub fn switches(&self) -> bool {
        matches!(self, DeviceKind::Switch)
    }

    /// Display keyword used in topology listings.
    pub fn keyword(&self) -> &'static str {
        match self {
            DeviceKind::Router => "router",
            DeviceKind::Switch => "switch",
            DeviceKind::Firewall => "firewall",
            DeviceKind::Host => "host",
        }
    }
}

/// A network device: a kind plus its configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    pub name: String,
    pub kind: DeviceKind,
    pub config: DeviceConfig,
}

impl Device {
    /// Creates a device with an empty configuration.
    pub fn new(name: impl Into<String>, kind: DeviceKind) -> Self {
        let name = name.into();
        Device {
            config: DeviceConfig::new(name.clone()),
            name,
            kind,
        }
    }

    /// All L3 addresses configured on this device.
    pub fn addresses(&self) -> Vec<Ipv4Addr> {
        self.config
            .interfaces
            .iter()
            .filter_map(|i| i.address.map(|a| a.ip))
            .collect()
    }

    /// The device's "primary" address: the first configured interface
    /// address. Hosts use this as their identity in reachability queries.
    pub fn primary_address(&self) -> Option<Ipv4Addr> {
        self.config
            .interfaces
            .iter()
            .find_map(|i| i.address.map(|a| a.ip))
    }

    /// The router id used by routing protocols: explicit OSPF router-id if
    /// set, else the numerically highest interface address.
    pub fn router_id(&self) -> Option<Ipv4Addr> {
        if let Some(o) = &self.config.ospf {
            if let Some(rid) = o.router_id {
                return Some(rid);
            }
        }
        self.addresses().into_iter().max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::Interface;
    use crate::proto::OspfConfig;

    #[test]
    fn kinds() {
        assert!(DeviceKind::Router.routes());
        assert!(DeviceKind::Firewall.routes());
        assert!(!DeviceKind::Host.routes());
        assert!(DeviceKind::Switch.switches());
        assert_eq!(DeviceKind::Firewall.keyword(), "firewall");
    }

    #[test]
    fn addresses_and_primary() {
        let mut d = Device::new("r1", DeviceKind::Router);
        d.config
            .upsert_interface(Interface::new("Gi0/0").with_address(Ipv4Addr::new(10, 0, 0, 1), 24));
        d.config
            .upsert_interface(Interface::new("Gi0/1").with_address(Ipv4Addr::new(10, 0, 1, 1), 24));
        assert_eq!(d.addresses().len(), 2);
        assert_eq!(d.primary_address(), Some(Ipv4Addr::new(10, 0, 0, 1)));
    }

    #[test]
    fn router_id_prefers_explicit() {
        let mut d = Device::new("r1", DeviceKind::Router);
        d.config
            .upsert_interface(Interface::new("Gi0/0").with_address(Ipv4Addr::new(10, 0, 0, 1), 24));
        assert_eq!(d.router_id(), Some(Ipv4Addr::new(10, 0, 0, 1)));
        d.config.ospf = Some(OspfConfig::new(1).with_router_id(Ipv4Addr::new(9, 9, 9, 9)));
        assert_eq!(d.router_id(), Some(Ipv4Addr::new(9, 9, 9, 9)));
    }

    #[test]
    fn empty_device_has_no_identity() {
        let d = Device::new("h1", DeviceKind::Host);
        assert!(d.primary_address().is_none());
        assert!(d.router_id().is_none());
    }
}
