//! Access-control lists: the matching primitive for firewalls and router
//! interfaces, and the object most of the paper's scenarios edit.
//!
//! ACLs here follow the IOS extended-ACL model: an ordered list of entries,
//! first match wins, implicit `deny ip any any` at the end. The data-plane
//! crate evaluates them per interface (`in`/`out`); the twin's reference
//! monitor treats "modify ACL `x` on device `d`" as a distinct privilege.

use crate::ip::Prefix;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// The verdict of an ACL entry (or of a whole ACL evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AclAction {
    /// Traffic is allowed to proceed.
    Permit,
    /// Traffic is dropped.
    Deny,
}

impl fmt::Display for AclAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AclAction::Permit => write!(f, "permit"),
            AclAction::Deny => write!(f, "deny"),
        }
    }
}

/// IP protocol selector in an ACL entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Proto {
    /// Matches any IP protocol.
    Any,
    Tcp,
    Udp,
    Icmp,
}

impl Proto {
    /// Whether a concrete flow protocol satisfies this selector.
    pub fn matches(&self, concrete: Proto) -> bool {
        matches!(self, Proto::Any) || *self == concrete
    }

    /// The IOS keyword for this protocol.
    pub fn keyword(&self) -> &'static str {
        match self {
            Proto::Any => "ip",
            Proto::Tcp => "tcp",
            Proto::Udp => "udp",
            Proto::Icmp => "icmp",
        }
    }

    /// Parses an IOS protocol keyword.
    pub fn from_keyword(s: &str) -> Option<Proto> {
        match s {
            "ip" => Some(Proto::Any),
            "tcp" => Some(Proto::Tcp),
            "udp" => Some(Proto::Udp),
            "icmp" => Some(Proto::Icmp),
            _ => None,
        }
    }
}

/// A TCP/UDP port matcher (`eq`, range, or any).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortMatch {
    /// Matches every port.
    Any,
    /// `eq N`
    Eq(u16),
    /// `range lo hi`, inclusive.
    Range(u16, u16),
}

impl PortMatch {
    /// Whether `port` satisfies this matcher.
    pub fn matches(&self, port: u16) -> bool {
        match self {
            PortMatch::Any => true,
            PortMatch::Eq(p) => *p == port,
            PortMatch::Range(lo, hi) => (*lo..=*hi).contains(&port),
        }
    }
}

impl fmt::Display for PortMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortMatch::Any => Ok(()),
            PortMatch::Eq(p) => write!(f, " eq {p}"),
            PortMatch::Range(lo, hi) => write!(f, " range {lo} {hi}"),
        }
    }
}

/// One line of an extended ACL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AclEntry {
    pub action: AclAction,
    pub proto: Proto,
    /// Source prefix (use `Prefix::DEFAULT` for `any`).
    pub src: Prefix,
    /// Destination prefix (use `Prefix::DEFAULT` for `any`).
    pub dst: Prefix,
    pub src_port: PortMatch,
    pub dst_port: PortMatch,
}

impl AclEntry {
    /// A `permit ip any any` entry.
    pub fn permit_any() -> Self {
        AclEntry {
            action: AclAction::Permit,
            proto: Proto::Any,
            src: Prefix::DEFAULT,
            dst: Prefix::DEFAULT,
            src_port: PortMatch::Any,
            dst_port: PortMatch::Any,
        }
    }

    /// A `deny ip any any` entry (the implicit ACL tail, made explicit).
    pub fn deny_any() -> Self {
        AclEntry {
            action: AclAction::Deny,
            ..AclEntry::permit_any()
        }
    }

    /// A simple permit/deny of `proto` from `src` to `dst` on any ports.
    pub fn simple(action: AclAction, proto: Proto, src: Prefix, dst: Prefix) -> Self {
        AclEntry {
            action,
            proto,
            src,
            dst,
            src_port: PortMatch::Any,
            dst_port: PortMatch::Any,
        }
    }

    /// Whether a concrete flow matches this entry.
    pub fn matches(
        &self,
        proto: Proto,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        sport: u16,
        dport: u16,
    ) -> bool {
        self.proto.matches(proto)
            && self.src.contains(src)
            && self.dst.contains(dst)
            // Ports are only meaningful for TCP/UDP; ICMP flows carry 0.
            && (matches!(self.proto, Proto::Any | Proto::Icmp)
                || (self.src_port.matches(sport) && self.dst_port.matches(dport)))
    }
}

/// Renders a prefix the way IOS ACLs spell it: `any`, `host A`, or
/// `A wildcard`.
fn fmt_acl_prefix(p: &Prefix, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if p.is_default() {
        write!(f, "any")
    } else if p.len() == 32 {
        write!(f, "host {}", p.addr())
    } else {
        write!(f, "{} {}", p.addr(), p.wildcard())
    }
}

impl fmt::Display for AclEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} ", self.action, self.proto.keyword())?;
        fmt_acl_prefix(&self.src, f)?;
        write!(f, "{}", self.src_port)?;
        write!(f, " ")?;
        fmt_acl_prefix(&self.dst, f)?;
        write!(f, "{}", self.dst_port)
    }
}

/// A named (or numbered) ordered access list.
///
/// Evaluation is first-match; if nothing matches, the implicit action is
/// `Deny` (matching IOS behaviour).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Acl {
    /// The ACL's name; numbered ACLs use their number as the name ("101").
    pub name: String,
    /// Ordered match entries.
    pub entries: Vec<AclEntry>,
}

impl Acl {
    /// Creates an empty ACL with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Acl {
            name: name.into(),
            entries: Vec::new(),
        }
    }

    /// Appends an entry, builder-style.
    pub fn entry(mut self, e: AclEntry) -> Self {
        self.entries.push(e);
        self
    }

    /// Evaluates the ACL against a concrete flow. Returns the action of the
    /// first matching entry, or `Deny` (the implicit tail) if none match.
    pub fn evaluate(
        &self,
        proto: Proto,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        sport: u16,
        dport: u16,
    ) -> AclAction {
        for e in &self.entries {
            if e.matches(proto, src, dst, sport, dport) {
                return e.action;
            }
        }
        AclAction::Deny
    }

    /// Index of the first entry matching the flow, if any. Useful for
    /// counterexample explanations ("denied by line 3 of acl 101").
    pub fn first_match(
        &self,
        proto: Proto,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        sport: u16,
        dport: u16,
    ) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.matches(proto, src, dst, sport, dport))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn first_match_wins() {
        let acl = Acl::new("101")
            .entry(AclEntry::simple(
                AclAction::Deny,
                Proto::Tcp,
                p("10.0.1.0/24"),
                p("10.0.2.0/24"),
            ))
            .entry(AclEntry::permit_any());
        assert_eq!(
            acl.evaluate(Proto::Tcp, ip("10.0.1.5"), ip("10.0.2.9"), 1234, 80),
            AclAction::Deny
        );
        assert_eq!(
            acl.evaluate(Proto::Udp, ip("10.0.1.5"), ip("10.0.2.9"), 1234, 80),
            AclAction::Permit
        );
    }

    #[test]
    fn implicit_deny_tail() {
        let acl = Acl::new("sparse").entry(AclEntry::simple(
            AclAction::Permit,
            Proto::Any,
            p("10.0.0.0/8"),
            Prefix::DEFAULT,
        ));
        assert_eq!(
            acl.evaluate(Proto::Tcp, ip("192.168.1.1"), ip("10.0.0.1"), 1, 2),
            AclAction::Deny
        );
    }

    #[test]
    fn empty_acl_denies_everything() {
        let acl = Acl::new("empty");
        assert_eq!(
            acl.evaluate(Proto::Any, ip("1.1.1.1"), ip("2.2.2.2"), 0, 0),
            AclAction::Deny
        );
    }

    #[test]
    fn port_matchers() {
        assert!(PortMatch::Any.matches(0));
        assert!(PortMatch::Eq(80).matches(80));
        assert!(!PortMatch::Eq(80).matches(81));
        assert!(PortMatch::Range(1000, 2000).matches(1500));
        assert!(!PortMatch::Range(1000, 2000).matches(2001));
    }

    #[test]
    fn dst_port_filtering_on_tcp() {
        let mut e = AclEntry::simple(
            AclAction::Permit,
            Proto::Tcp,
            Prefix::DEFAULT,
            Prefix::DEFAULT,
        );
        e.dst_port = PortMatch::Eq(443);
        assert!(e.matches(Proto::Tcp, ip("1.1.1.1"), ip("2.2.2.2"), 5555, 443));
        assert!(!e.matches(Proto::Tcp, ip("1.1.1.1"), ip("2.2.2.2"), 5555, 80));
    }

    #[test]
    fn ip_proto_entry_ignores_ports() {
        let mut e = AclEntry::simple(
            AclAction::Permit,
            Proto::Any,
            Prefix::DEFAULT,
            Prefix::DEFAULT,
        );
        e.dst_port = PortMatch::Eq(443); // meaningless on `ip`, must be ignored
        assert!(e.matches(Proto::Tcp, ip("1.1.1.1"), ip("2.2.2.2"), 5555, 80));
    }

    #[test]
    fn icmp_never_port_filtered() {
        let e = AclEntry::simple(
            AclAction::Permit,
            Proto::Icmp,
            Prefix::DEFAULT,
            Prefix::DEFAULT,
        );
        assert!(e.matches(Proto::Icmp, ip("1.1.1.1"), ip("2.2.2.2"), 0, 0));
        assert!(!e.matches(Proto::Tcp, ip("1.1.1.1"), ip("2.2.2.2"), 0, 0));
    }

    #[test]
    fn display_forms() {
        let mut e = AclEntry::simple(
            AclAction::Permit,
            Proto::Tcp,
            p("10.0.1.0/24"),
            p("10.9.9.9/32"),
        );
        e.dst_port = PortMatch::Eq(80);
        assert_eq!(
            e.to_string(),
            "permit tcp 10.0.1.0 0.0.0.255 host 10.9.9.9 eq 80"
        );
        assert_eq!(AclEntry::deny_any().to_string(), "deny ip any any");
    }

    #[test]
    fn first_match_index() {
        let acl = Acl::new("x")
            .entry(AclEntry::simple(
                AclAction::Deny,
                Proto::Udp,
                Prefix::DEFAULT,
                Prefix::DEFAULT,
            ))
            .entry(AclEntry::permit_any());
        assert_eq!(
            acl.first_match(Proto::Udp, ip("1.1.1.1"), ip("2.2.2.2"), 1, 1),
            Some(0)
        );
        assert_eq!(
            acl.first_match(Proto::Tcp, ip("1.1.1.1"), ip("2.2.2.2"), 1, 1),
            Some(1)
        );
    }
}
