//! A fluent network builder: allocates point-to-point subnets, names
//! interfaces, wires hosts to gateway routers, and enables OSPF across the
//! fabric. The Table 1 generators and all test fixtures are written against
//! this API.

use crate::device::{Device, DeviceKind};
use crate::iface::Interface;
use crate::ip::Prefix;
use crate::proto::{OspfConfig, StaticRoute};
use crate::topology::{Network, TopologyError};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Incrementally constructs a [`Network`].
///
/// Point-to-point links are auto-addressed from a `/30` pool (default
/// `10.255.0.0/16`); LAN subnets are provided by the caller. Interface names
/// are `Gi0/0`, `Gi0/1`, ... per device (hosts get `eth0`).
pub struct NetBuilder {
    net: Network,
    p2p_pool: Prefix,
    next_p2p: u32,
    iface_counter: HashMap<String, u32>,
}

impl Default for NetBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl NetBuilder {
    /// A builder with the default p2p pool `10.255.0.0/16`.
    pub fn new() -> Self {
        NetBuilder {
            net: Network::new(),
            p2p_pool: "10.255.0.0/16".parse().expect("valid literal"),
            next_p2p: 0,
            iface_counter: HashMap::new(),
        }
    }

    /// Overrides the p2p address pool.
    pub fn with_p2p_pool(mut self, pool: Prefix) -> Self {
        self.p2p_pool = pool;
        self
    }

    /// Adds a router.
    pub fn router(&mut self, name: &str) -> &mut Self {
        self.add(Device::new(name, DeviceKind::Router))
    }

    /// Adds a firewall (a router whose ACLs are security-critical).
    pub fn firewall(&mut self, name: &str) -> &mut Self {
        self.add(Device::new(name, DeviceKind::Firewall))
    }

    /// Adds a switch.
    pub fn switch(&mut self, name: &str) -> &mut Self {
        self.add(Device::new(name, DeviceKind::Switch))
    }

    fn add(&mut self, d: Device) -> &mut Self {
        self.net
            .add_device(d)
            .expect("builder device names are unique");
        self
    }

    fn next_iface(&mut self, device: &str, host: bool) -> String {
        let n = self.iface_counter.entry(device.to_string()).or_insert(0);
        let name = if host {
            format!("eth{n}")
        } else {
            format!("Gi0/{n}")
        };
        *n += 1;
        name
    }

    /// Connects two routers with an auto-addressed /30. Returns
    /// `(a_iface, a_ip, b_iface, b_ip, subnet)`.
    pub fn connect(&mut self, a: &str, b: &str) -> (String, Ipv4Addr, String, Ipv4Addr, Prefix) {
        let subnet = self
            .p2p_pool
            .subnets(30, (self.next_p2p + 1) as usize)
            .pop()
            .expect("p2p pool exhausted");
        self.next_p2p += 1;
        let a_ip = subnet.nth_host(1).expect("/30 has two hosts");
        let b_ip = subnet.nth_host(2).expect("/30 has two hosts");
        let a_iface = self.next_iface(a, false);
        let b_iface = self.next_iface(b, false);
        self.add_l3_iface(a, &a_iface, a_ip, 30);
        self.add_l3_iface(b, &b_iface, b_ip, 30);
        self.net
            .add_link(a, &a_iface, b, &b_iface)
            .expect("builder links are fresh");
        (a_iface, a_ip, b_iface, b_ip, subnet)
    }

    fn add_l3_iface(&mut self, device: &str, iface: &str, ip: Ipv4Addr, len: u8) {
        let d = self
            .net
            .device_by_name_mut(device)
            .unwrap_or_else(|| panic!("unknown device {device}"));
        d.config
            .upsert_interface(Interface::new(iface).with_address(ip, len));
    }

    /// Creates a LAN: the router gets `subnet.1` on a new interface; each
    /// host is created (if needed), addressed `.10, .11, ...`, linked in,
    /// and given a default route via the router. Returns the gateway
    /// interface name.
    pub fn lan(&mut self, router: &str, subnet: Prefix, hosts: &[&str]) -> String {
        let gw_ip = subnet.nth_host(1).expect("subnet too small");
        let gw_iface = self.next_iface(router, false);
        self.add_l3_iface(router, &gw_iface, gw_ip, subnet.len());
        for (i, h) in hosts.iter().enumerate() {
            if self.net.device_by_name(h).is_none() {
                self.add(Device::new(*h, DeviceKind::Host));
            }
            let ip = subnet
                .nth_host(10 + i as u32)
                .unwrap_or_else(|| panic!("subnet {subnet} too small for host {h}"));
            let h_iface = self.next_iface(h, true);
            self.add_l3_iface(h, &h_iface, ip, subnet.len());
            let hd = self.net.device_by_name_mut(h).expect("just added");
            hd.config
                .static_routes
                .push(StaticRoute::default_via(gw_ip));
            self.net
                .add_link(router, &gw_iface, h, &h_iface)
                .expect("fresh host link");
        }
        gw_iface
    }

    /// Enables single-area OSPF on every router/firewall: one `network`
    /// statement per connected subnet, process id 1, area `area`.
    pub fn enable_ospf_all(&mut self, area: u32) -> &mut Self {
        let names: Vec<String> = self
            .net
            .devices()
            .filter(|(_, d)| d.kind.routes())
            .map(|(_, d)| d.name.clone())
            .collect();
        for name in names {
            let d = self.net.device_by_name_mut(&name).expect("listed above");
            let mut ospf = d.config.ospf.take().unwrap_or_else(|| OspfConfig::new(1));
            for iface in &d.config.interfaces {
                if let Some(subnet) = iface.subnet() {
                    if ospf.area_for(subnet.addr()) != Some(area) {
                        ospf.networks.push(crate::proto::OspfNetwork {
                            prefix: subnet,
                            area,
                        });
                    }
                }
            }
            d.config.ospf = Some(ospf);
        }
        self
    }

    /// Adopts a fully-formed host device (used when hosts need custom
    /// wiring, e.g. behind switchports, that [`NetBuilder::lan`] can't do).
    pub fn adopt_host(&mut self, device: Device) -> &mut Self {
        self.add(device)
    }

    /// Mutable access to the network under construction, for wiring the
    /// helpers don't cover.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Direct mutable access for customization the helpers don't cover.
    pub fn device_mut(&mut self, name: &str) -> &mut Device {
        self.net
            .device_by_name_mut(name)
            .unwrap_or_else(|| panic!("unknown device {name}"))
    }

    /// Adds an explicit extra link between existing interfaces.
    pub fn link(&mut self, a: &str, ai: &str, b: &str, bi: &str) -> Result<(), TopologyError> {
        self.net.add_link(a, ai, b, bi)
    }

    /// Finishes construction.
    pub fn build(self) -> Network {
        self.net
    }

    /// Peeks at the network under construction.
    pub fn network(&self) -> &Network {
        &self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_allocates_distinct_p2p_subnets() {
        let mut b = NetBuilder::new();
        b.router("r1").router("r2").router("r3");
        let (_, a1, _, b1, s1) = b.connect("r1", "r2");
        let (_, a2, _, _, s2) = b.connect("r2", "r3");
        assert_ne!(s1, s2);
        assert!(s1.contains(a1) && s1.contains(b1));
        assert!(s2.contains(a2));
        let n = b.build();
        assert_eq!(n.link_count(), 2);
        assert_eq!(n.device_count(), 3);
    }

    #[test]
    fn lan_wires_hosts_with_default_routes() {
        let mut b = NetBuilder::new();
        b.router("r1");
        b.lan("r1", "10.1.0.0/24".parse().unwrap(), &["h1", "h2"]);
        let n = b.build();
        assert_eq!(n.device_count(), 3);
        assert_eq!(n.link_count(), 2);
        let h1 = n.device_by_name("h1").unwrap();
        assert_eq!(
            h1.primary_address().unwrap(),
            "10.1.0.10".parse::<Ipv4Addr>().unwrap()
        );
        assert_eq!(h1.config.static_routes.len(), 1);
        assert!(h1.config.static_routes[0].prefix.is_default());
    }

    #[test]
    fn ospf_covers_every_connected_subnet() {
        let mut b = NetBuilder::new();
        b.router("r1").router("r2");
        b.connect("r1", "r2");
        b.lan("r1", "10.1.0.0/24".parse().unwrap(), &["h1"]);
        b.enable_ospf_all(0);
        let n = b.build();
        let r1 = n.device_by_name("r1").unwrap();
        let ospf = r1.config.ospf.as_ref().unwrap();
        assert_eq!(ospf.networks.len(), 2);
        // Hosts never run OSPF.
        assert!(n.device_by_name("h1").unwrap().config.ospf.is_none());
    }

    #[test]
    fn parallel_links_allowed_on_fresh_interfaces() {
        let mut b = NetBuilder::new();
        b.router("r1").router("r2");
        b.connect("r1", "r2");
        b.connect("r1", "r2");
        assert_eq!(b.network().link_count(), 2);
    }
}
