//! Routing-protocol *configuration* (not computation): static routes, OSPF
//! process settings, and BGP process settings as they appear in device
//! configs. The `heimdall-routing` crate consumes these to converge RIBs.

use crate::ip::Prefix;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Where a static route sends traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NextHop {
    /// Forward to this IP (resolved recursively against connected subnets).
    Ip(Ipv4Addr),
    /// Discard silently (`Null0`) — used for sinkholes and aggregates.
    Discard,
}

/// An `ip route PREFIX MASK NEXTHOP [distance]` statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticRoute {
    pub prefix: Prefix,
    pub next_hop: NextHop,
    /// Administrative distance (IOS default for statics is 1).
    pub distance: u8,
}

impl StaticRoute {
    /// A static route with the default administrative distance (1).
    pub fn new(prefix: Prefix, next_hop: Ipv4Addr) -> Self {
        StaticRoute {
            prefix,
            next_hop: NextHop::Ip(next_hop),
            distance: 1,
        }
    }

    /// A default route (`0.0.0.0/0`) via `next_hop`.
    pub fn default_via(next_hop: Ipv4Addr) -> Self {
        StaticRoute::new(Prefix::DEFAULT, next_hop)
    }

    /// A discard (Null0) route.
    pub fn discard(prefix: Prefix) -> Self {
        StaticRoute {
            prefix,
            next_hop: NextHop::Discard,
            distance: 1,
        }
    }
}

/// An OSPF area id. Area 0 is the backbone.
pub type AreaId = u32;

/// An OSPF `network A WILDCARD area N` statement: interfaces whose address
/// falls inside `prefix` participate in `area`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OspfNetwork {
    pub prefix: Prefix,
    pub area: AreaId,
}

/// A `router ospf N` process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OspfConfig {
    pub process_id: u32,
    /// Explicit router id; if unset, the highest interface IP is used.
    pub router_id: Option<Ipv4Addr>,
    /// `network ... area ...` statements, in configuration order.
    pub networks: Vec<OspfNetwork>,
    /// Interfaces that participate but never form adjacencies.
    pub passive_interfaces: Vec<String>,
    /// Whether static routes are redistributed into OSPF (as external,
    /// metric 20).
    pub redistribute_static: bool,
    /// Reference bandwidth for cost auto-derivation, in kbit/s
    /// (IOS default: 100 Mb/s).
    pub reference_bandwidth_kbps: u64,
}

impl OspfConfig {
    /// A fresh OSPF process with IOS-like defaults.
    pub fn new(process_id: u32) -> Self {
        OspfConfig {
            process_id,
            router_id: None,
            networks: Vec::new(),
            passive_interfaces: Vec::new(),
            redistribute_static: false,
            reference_bandwidth_kbps: 100_000,
        }
    }

    /// Builder: add a `network` statement.
    pub fn network(mut self, prefix: Prefix, area: AreaId) -> Self {
        self.networks.push(OspfNetwork { prefix, area });
        self
    }

    /// Builder: set the router id.
    pub fn with_router_id(mut self, id: Ipv4Addr) -> Self {
        self.router_id = Some(id);
        self
    }

    /// Builder: mark an interface passive.
    pub fn passive(mut self, iface: impl Into<String>) -> Self {
        self.passive_interfaces.push(iface.into());
        self
    }

    /// The area an interface with address `ip` participates in, if any.
    /// The *first* matching network statement wins (IOS order semantics).
    pub fn area_for(&self, ip: Ipv4Addr) -> Option<AreaId> {
        self.networks
            .iter()
            .find(|n| n.prefix.contains(ip))
            .map(|n| n.area)
    }

    /// Whether `iface` is configured passive.
    pub fn is_passive(&self, iface: &str) -> bool {
        self.passive_interfaces.iter().any(|p| p == iface)
    }
}

/// A BGP neighbor statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgpNeighbor {
    pub addr: Ipv4Addr,
    pub remote_as: u32,
}

/// A `router bgp N` process (simplified: eBGP/iBGP best-path over
/// AS-path length and local preference).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgpConfig {
    pub asn: u32,
    pub router_id: Option<Ipv4Addr>,
    pub neighbors: Vec<BgpNeighbor>,
    /// Prefixes this router originates (`network` statements).
    pub networks: Vec<Prefix>,
    /// Whether a default route is advertised to all neighbors.
    pub default_originate: bool,
}

impl BgpConfig {
    /// A fresh BGP process in `asn`.
    pub fn new(asn: u32) -> Self {
        BgpConfig {
            asn,
            router_id: None,
            neighbors: Vec::new(),
            networks: Vec::new(),
            default_originate: false,
        }
    }

    /// Builder: set the router id.
    pub fn with_router_id(mut self, id: Ipv4Addr) -> Self {
        self.router_id = Some(id);
        self
    }

    /// Builder: add a neighbor.
    pub fn neighbor(mut self, addr: Ipv4Addr, remote_as: u32) -> Self {
        self.neighbors.push(BgpNeighbor { addr, remote_as });
        self
    }

    /// Builder: originate `prefix`.
    pub fn network(mut self, prefix: Prefix) -> Self {
        self.networks.push(prefix);
        self
    }

    /// The configured session to `addr`, if any.
    pub fn neighbor_for(&self, addr: Ipv4Addr) -> Option<&BgpNeighbor> {
        self.neighbors.iter().find(|n| n.addr == addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn static_route_defaults() {
        let r = StaticRoute::new(p("10.0.0.0/8"), ip("192.168.0.1"));
        assert_eq!(r.distance, 1);
        assert_eq!(r.next_hop, NextHop::Ip(ip("192.168.0.1")));
        assert!(StaticRoute::default_via(ip("1.1.1.1")).prefix.is_default());
        assert_eq!(
            StaticRoute::discard(p("10.0.0.0/8")).next_hop,
            NextHop::Discard
        );
    }

    #[test]
    fn ospf_area_first_match_wins() {
        let o = OspfConfig::new(1)
            .network(p("10.0.1.0/24"), 1)
            .network(p("10.0.0.0/8"), 0);
        assert_eq!(o.area_for(ip("10.0.1.5")), Some(1));
        assert_eq!(o.area_for(ip("10.9.9.9")), Some(0));
        assert_eq!(o.area_for(ip("192.168.1.1")), None);
    }

    #[test]
    fn ospf_passive() {
        let o = OspfConfig::new(1).passive("Gi0/3");
        assert!(o.is_passive("Gi0/3"));
        assert!(!o.is_passive("Gi0/1"));
    }

    #[test]
    fn bgp_neighbor_lookup() {
        let b = BgpConfig::new(65001)
            .neighbor(ip("10.0.0.2"), 65002)
            .network(p("192.168.0.0/16"));
        assert_eq!(b.neighbor_for(ip("10.0.0.2")).unwrap().remote_as, 65002);
        assert!(b.neighbor_for(ip("10.0.0.3")).is_none());
    }
}
