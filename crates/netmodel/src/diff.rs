//! Structured configuration diffs: the unit of change flowing from the twin
//! network to the policy enforcer.
//!
//! A technician session in the twin produces a [`ConfigDiff`] — the set of
//! [`ConfigChange`]s that transform the production configs into the twin's
//! final configs. The enforcer verifies this set against network policies,
//! the scheduler orders it, and the reference monitor classifies each change
//! for privilege checking.
//!
//! Invariant (property-tested): for any two configs `a`, `b` of the same
//! device, applying `diff_configs(a, b)` to `a` yields exactly `b`.

use crate::acl::{Acl, AclEntry};
use crate::config::{DeviceConfig, Secrets};
use crate::iface::{Interface, InterfaceAddress};
use crate::proto::{BgpConfig, OspfConfig, StaticRoute};
use crate::topology::Network;
use crate::vlan::{SwitchPortMode, Vlan};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which direction an ACL binding applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AclDirection {
    In,
    Out,
}

impl fmt::Display for AclDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AclDirection::In => write!(f, "in"),
            AclDirection::Out => write!(f, "out"),
        }
    }
}

/// One atomic configuration change on one device.
///
/// Granularity choices mirror what the paper's scenarios need: interface
/// attributes change field-by-field (a technician toggles `shutdown` or
/// moves an access VLAN), ACLs change as whole lists (rule edits are
/// order-sensitive), routing processes change wholesale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ConfigChange {
    AddInterface {
        device: String,
        iface: Interface,
    },
    RemoveInterface {
        device: String,
        iface: String,
    },
    SetInterfaceAddress {
        device: String,
        iface: String,
        address: Option<InterfaceAddress>,
    },
    SetInterfaceEnabled {
        device: String,
        iface: String,
        enabled: bool,
    },
    SetInterfaceAcl {
        device: String,
        iface: String,
        direction: AclDirection,
        acl: Option<String>,
    },
    SetSwitchport {
        device: String,
        iface: String,
        mode: Option<SwitchPortMode>,
    },
    SetOspfCost {
        device: String,
        iface: String,
        cost: Option<u32>,
    },
    SetBandwidth {
        device: String,
        iface: String,
        kbps: u64,
    },
    SetDescription {
        device: String,
        iface: String,
        description: Option<String>,
    },
    ReplaceAcl {
        device: String,
        name: String,
        entries: Vec<AclEntry>,
    },
    RemoveAcl {
        device: String,
        name: String,
    },
    AddStaticRoute {
        device: String,
        route: StaticRoute,
    },
    RemoveStaticRoute {
        device: String,
        route: StaticRoute,
    },
    SetOspf {
        device: String,
        ospf: Option<OspfConfig>,
    },
    SetBgp {
        device: String,
        bgp: Option<BgpConfig>,
    },
    UpsertVlan {
        device: String,
        vlan: Vlan,
    },
    RemoveVlan {
        device: String,
        vlan: u16,
    },
    SetRawGlobals {
        device: String,
        lines: Vec<String>,
    },
    ReplaceSecrets {
        device: String,
        secrets: Secrets,
    },
}

impl ConfigChange {
    /// The device this change targets.
    pub fn device(&self) -> &str {
        use ConfigChange::*;
        match self {
            AddInterface { device, .. }
            | RemoveInterface { device, .. }
            | SetInterfaceAddress { device, .. }
            | SetInterfaceEnabled { device, .. }
            | SetInterfaceAcl { device, .. }
            | SetSwitchport { device, .. }
            | SetOspfCost { device, .. }
            | SetBandwidth { device, .. }
            | SetDescription { device, .. }
            | ReplaceAcl { device, .. }
            | RemoveAcl { device, .. }
            | AddStaticRoute { device, .. }
            | RemoveStaticRoute { device, .. }
            | SetOspf { device, .. }
            | SetBgp { device, .. }
            | UpsertVlan { device, .. }
            | RemoveVlan { device, .. }
            | SetRawGlobals { device, .. }
            | ReplaceSecrets { device, .. } => device,
        }
    }

    /// The interface this change targets, if it is interface-scoped.
    pub fn interface(&self) -> Option<&str> {
        use ConfigChange::*;
        match self {
            AddInterface { iface, .. } => Some(&iface.name),
            RemoveInterface { iface, .. }
            | SetInterfaceAddress { iface, .. }
            | SetInterfaceEnabled { iface, .. }
            | SetInterfaceAcl { iface, .. }
            | SetSwitchport { iface, .. }
            | SetOspfCost { iface, .. }
            | SetBandwidth { iface, .. }
            | SetDescription { iface, .. } => Some(iface),
            _ => None,
        }
    }

    /// A one-line human-readable summary, used by audit trails.
    pub fn summary(&self) -> String {
        use ConfigChange::*;
        match self {
            AddInterface { device, iface } => format!("{device}: add interface {}", iface.name),
            RemoveInterface { device, iface } => format!("{device}: remove interface {iface}"),
            SetInterfaceAddress {
                device,
                iface,
                address,
            } => match address {
                Some(a) => format!("{device}: {iface} ip address {}/{}", a.ip, a.prefix_len),
                None => format!("{device}: {iface} no ip address"),
            },
            SetInterfaceEnabled {
                device,
                iface,
                enabled,
            } => {
                let verb = if *enabled { "no shutdown" } else { "shutdown" };
                format!("{device}: {iface} {verb}")
            }
            SetInterfaceAcl {
                device,
                iface,
                direction,
                acl,
            } => match acl {
                Some(a) => format!("{device}: {iface} ip access-group {a} {direction}"),
                None => format!("{device}: {iface} no ip access-group {direction}"),
            },
            SetSwitchport { device, iface, .. } => format!("{device}: {iface} switchport change"),
            SetOspfCost {
                device,
                iface,
                cost,
            } => {
                format!("{device}: {iface} ip ospf cost {cost:?}")
            }
            SetBandwidth {
                device,
                iface,
                kbps,
            } => {
                format!("{device}: {iface} bandwidth {kbps}")
            }
            SetDescription { device, iface, .. } => format!("{device}: {iface} description"),
            ReplaceAcl {
                device,
                name,
                entries,
            } => {
                format!("{device}: replace acl {name} ({} entries)", entries.len())
            }
            RemoveAcl { device, name } => format!("{device}: remove acl {name}"),
            AddStaticRoute { device, route } => {
                format!("{device}: add ip route {}", route.prefix)
            }
            RemoveStaticRoute { device, route } => {
                format!("{device}: remove ip route {}", route.prefix)
            }
            SetOspf { device, ospf } => match ospf {
                Some(o) => format!("{device}: configure router ospf {}", o.process_id),
                None => format!("{device}: no router ospf"),
            },
            SetBgp { device, bgp } => match bgp {
                Some(b) => format!("{device}: configure router bgp {}", b.asn),
                None => format!("{device}: no router bgp"),
            },
            UpsertVlan { device, vlan } => format!("{device}: vlan {}", vlan.id),
            RemoveVlan { device, vlan } => format!("{device}: no vlan {vlan}"),
            SetRawGlobals { device, lines } => {
                format!("{device}: replace {} global lines", lines.len())
            }
            ReplaceSecrets { device, .. } => format!("{device}: replace credentials"),
        }
    }

    /// Applies this change to `cfg` (which must belong to [`Self::device`]).
    /// Returns an error string if the target object does not exist.
    pub fn apply(&self, cfg: &mut DeviceConfig) -> Result<(), String> {
        use ConfigChange::*;
        let want_iface = |cfg: &mut DeviceConfig, name: &str| -> Result<usize, String> {
            cfg.interfaces
                .iter()
                .position(|i| i.name == name)
                .ok_or_else(|| format!("no interface {name}"))
        };
        match self {
            AddInterface { iface, .. } => cfg.upsert_interface(iface.clone()),
            RemoveInterface { iface, .. } => {
                let i = want_iface(cfg, iface)?;
                cfg.interfaces.remove(i);
            }
            SetInterfaceAddress { iface, address, .. } => {
                let i = want_iface(cfg, iface)?;
                cfg.interfaces[i].address = *address;
            }
            SetInterfaceEnabled { iface, enabled, .. } => {
                let i = want_iface(cfg, iface)?;
                cfg.interfaces[i].enabled = *enabled;
            }
            SetInterfaceAcl {
                iface,
                direction,
                acl,
                ..
            } => {
                let i = want_iface(cfg, iface)?;
                match direction {
                    AclDirection::In => cfg.interfaces[i].acl_in = acl.clone(),
                    AclDirection::Out => cfg.interfaces[i].acl_out = acl.clone(),
                }
            }
            SetSwitchport { iface, mode, .. } => {
                let i = want_iface(cfg, iface)?;
                cfg.interfaces[i].switchport = mode.clone();
            }
            SetOspfCost { iface, cost, .. } => {
                let i = want_iface(cfg, iface)?;
                cfg.interfaces[i].ospf_cost = *cost;
            }
            SetBandwidth { iface, kbps, .. } => {
                let i = want_iface(cfg, iface)?;
                cfg.interfaces[i].bandwidth_kbps = *kbps;
            }
            SetDescription {
                iface, description, ..
            } => {
                let i = want_iface(cfg, iface)?;
                cfg.interfaces[i].description = description.clone();
            }
            ReplaceAcl { name, entries, .. } => {
                cfg.acls.insert(
                    name.clone(),
                    Acl {
                        name: name.clone(),
                        entries: entries.clone(),
                    },
                );
            }
            RemoveAcl { name, .. } => {
                cfg.acls
                    .remove(name)
                    .ok_or_else(|| format!("no acl {name}"))?;
            }
            AddStaticRoute { route, .. } => cfg.static_routes.push(*route),
            RemoveStaticRoute { route, .. } => {
                let i = cfg
                    .static_routes
                    .iter()
                    .position(|r| r == route)
                    .ok_or_else(|| format!("no static route {}", route.prefix))?;
                cfg.static_routes.remove(i);
            }
            SetOspf { ospf, .. } => cfg.ospf = ospf.clone(),
            SetBgp { bgp, .. } => cfg.bgp = bgp.clone(),
            UpsertVlan { vlan, .. } => {
                cfg.vlans.insert(vlan.id, vlan.clone());
            }
            RemoveVlan { vlan, .. } => {
                cfg.vlans
                    .remove(vlan)
                    .ok_or_else(|| format!("no vlan {vlan}"))?;
            }
            SetRawGlobals { lines, .. } => cfg.raw_globals = lines.clone(),
            ReplaceSecrets { secrets, .. } => cfg.secrets = secrets.clone(),
        }
        Ok(())
    }
}

/// An ordered set of changes across one or more devices.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConfigDiff {
    pub changes: Vec<ConfigChange>,
}

impl ConfigDiff {
    /// Whether no changes were recorded.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Number of changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Devices touched, deduplicated, in first-touch order.
    pub fn devices(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for c in &self.changes {
            if !out.contains(&c.device()) {
                out.push(c.device());
            }
        }
        out
    }

    /// Applies all changes to the matching devices of `net`, stopping at the
    /// first error.
    pub fn apply_to_network(&self, net: &mut Network) -> Result<(), String> {
        for c in &self.changes {
            let dev = net
                .device_by_name_mut(c.device())
                .ok_or_else(|| format!("no device {}", c.device()))?;
            c.apply(&mut dev.config)
                .map_err(|e| format!("{}: {e}", c.device()))?;
        }
        Ok(())
    }
}

/// Computes the change set transforming `old` into `new` for one device.
pub fn diff_configs(old: &DeviceConfig, new: &DeviceConfig) -> ConfigDiff {
    let dev = new.hostname.clone();
    let mut ch = Vec::new();

    // Interfaces: removals, additions, then field-level edits.
    for i in &old.interfaces {
        if new.interface(&i.name).is_none() {
            ch.push(ConfigChange::RemoveInterface {
                device: dev.clone(),
                iface: i.name.clone(),
            });
        }
    }
    for ni in &new.interfaces {
        match old.interface(&ni.name) {
            None => ch.push(ConfigChange::AddInterface {
                device: dev.clone(),
                iface: ni.clone(),
            }),
            Some(oi) => {
                if oi.address != ni.address {
                    ch.push(ConfigChange::SetInterfaceAddress {
                        device: dev.clone(),
                        iface: ni.name.clone(),
                        address: ni.address,
                    });
                }
                if oi.enabled != ni.enabled {
                    ch.push(ConfigChange::SetInterfaceEnabled {
                        device: dev.clone(),
                        iface: ni.name.clone(),
                        enabled: ni.enabled,
                    });
                }
                if oi.acl_in != ni.acl_in {
                    ch.push(ConfigChange::SetInterfaceAcl {
                        device: dev.clone(),
                        iface: ni.name.clone(),
                        direction: AclDirection::In,
                        acl: ni.acl_in.clone(),
                    });
                }
                if oi.acl_out != ni.acl_out {
                    ch.push(ConfigChange::SetInterfaceAcl {
                        device: dev.clone(),
                        iface: ni.name.clone(),
                        direction: AclDirection::Out,
                        acl: ni.acl_out.clone(),
                    });
                }
                if oi.switchport != ni.switchport {
                    ch.push(ConfigChange::SetSwitchport {
                        device: dev.clone(),
                        iface: ni.name.clone(),
                        mode: ni.switchport.clone(),
                    });
                }
                if oi.ospf_cost != ni.ospf_cost {
                    ch.push(ConfigChange::SetOspfCost {
                        device: dev.clone(),
                        iface: ni.name.clone(),
                        cost: ni.ospf_cost,
                    });
                }
                if oi.bandwidth_kbps != ni.bandwidth_kbps {
                    ch.push(ConfigChange::SetBandwidth {
                        device: dev.clone(),
                        iface: ni.name.clone(),
                        kbps: ni.bandwidth_kbps,
                    });
                }
                if oi.description != ni.description {
                    ch.push(ConfigChange::SetDescription {
                        device: dev.clone(),
                        iface: ni.name.clone(),
                        description: ni.description.clone(),
                    });
                }
            }
        }
    }

    // ACLs.
    for name in old.acls.keys() {
        if !new.acls.contains_key(name) {
            ch.push(ConfigChange::RemoveAcl {
                device: dev.clone(),
                name: name.clone(),
            });
        }
    }
    for (name, acl) in &new.acls {
        if old.acls.get(name) != Some(acl) {
            ch.push(ConfigChange::ReplaceAcl {
                device: dev.clone(),
                name: name.clone(),
                entries: acl.entries.clone(),
            });
        }
    }

    // Static routes (set semantics).
    for r in &old.static_routes {
        if !new.static_routes.contains(r) {
            ch.push(ConfigChange::RemoveStaticRoute {
                device: dev.clone(),
                route: *r,
            });
        }
    }
    for r in &new.static_routes {
        if !old.static_routes.contains(r) {
            ch.push(ConfigChange::AddStaticRoute {
                device: dev.clone(),
                route: *r,
            });
        }
    }

    // Routing processes, VLANs, globals, secrets: whole-object.
    if old.ospf != new.ospf {
        ch.push(ConfigChange::SetOspf {
            device: dev.clone(),
            ospf: new.ospf.clone(),
        });
    }
    if old.bgp != new.bgp {
        ch.push(ConfigChange::SetBgp {
            device: dev.clone(),
            bgp: new.bgp.clone(),
        });
    }
    for id in old.vlans.keys() {
        if !new.vlans.contains_key(id) {
            ch.push(ConfigChange::RemoveVlan {
                device: dev.clone(),
                vlan: *id,
            });
        }
    }
    for (id, v) in &new.vlans {
        if old.vlans.get(id) != Some(v) {
            ch.push(ConfigChange::UpsertVlan {
                device: dev.clone(),
                vlan: v.clone(),
            });
        }
    }
    if old.raw_globals != new.raw_globals {
        ch.push(ConfigChange::SetRawGlobals {
            device: dev.clone(),
            lines: new.raw_globals.clone(),
        });
    }
    if old.secrets != new.secrets {
        ch.push(ConfigChange::ReplaceSecrets {
            device: dev.clone(),
            secrets: new.secrets.clone(),
        });
    }

    ConfigDiff { changes: ch }
}

/// Diffs every same-named device between two networks.
pub fn diff_networks(old: &Network, new: &Network) -> ConfigDiff {
    let mut all = Vec::new();
    for (_, nd) in new.devices() {
        if let Some(od) = old.device_by_name(&nd.name) {
            all.extend(diff_configs(&od.config, &nd.config).changes);
        }
    }
    ConfigDiff { changes: all }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::{AclAction, AclEntry, Proto};
    use crate::ip::Prefix;
    use std::net::Ipv4Addr;

    fn base() -> DeviceConfig {
        let mut c = DeviceConfig::new("r1");
        c.upsert_interface(Interface::new("Gi0/0").with_address(Ipv4Addr::new(10, 0, 0, 1), 24));
        c.upsert_interface(Interface::new("Gi0/1"));
        c.upsert_acl(Acl::new("101").entry(AclEntry::deny_any()));
        c.static_routes
            .push(StaticRoute::default_via(Ipv4Addr::new(10, 0, 0, 2)));
        c
    }

    #[test]
    fn identical_configs_diff_empty() {
        let c = base();
        assert!(diff_configs(&c, &c).is_empty());
    }

    #[test]
    fn diff_then_apply_reproduces_target() {
        let old = base();
        let mut new = base();
        new.interface_mut("Gi0/0").unwrap().enabled = false;
        new.interface_mut("Gi0/1").unwrap().address =
            Some(InterfaceAddress::new(Ipv4Addr::new(10, 0, 1, 1), 24));
        new.upsert_acl(Acl::new("101").entry(AclEntry::simple(
            AclAction::Permit,
            Proto::Tcp,
            Prefix::DEFAULT,
            Prefix::DEFAULT,
        )));
        new.static_routes.clear();
        new.static_routes
            .push(StaticRoute::default_via(Ipv4Addr::new(10, 0, 0, 3)));
        new.upsert_interface(Interface::new("Lo0"));

        let diff = diff_configs(&old, &new);
        assert!(!diff.is_empty());
        let mut patched = old.clone();
        for c in &diff.changes {
            c.apply(&mut patched).unwrap();
        }
        assert_eq!(patched, new);
    }

    #[test]
    fn remove_interface_diffed() {
        let old = base();
        let mut new = base();
        new.interfaces.retain(|i| i.name != "Gi0/1");
        let diff = diff_configs(&old, &new);
        assert_eq!(diff.len(), 1);
        assert!(matches!(
            diff.changes[0],
            ConfigChange::RemoveInterface { .. }
        ));
        let mut patched = old.clone();
        diff.changes[0].apply(&mut patched).unwrap();
        assert_eq!(patched, new);
    }

    #[test]
    fn apply_missing_target_errors() {
        let mut c = base();
        let bad = ConfigChange::SetInterfaceEnabled {
            device: "r1".into(),
            iface: "nope".into(),
            enabled: false,
        };
        assert!(bad.apply(&mut c).is_err());
        let bad = ConfigChange::RemoveAcl {
            device: "r1".into(),
            name: "absent".into(),
        };
        assert!(bad.apply(&mut c).is_err());
    }

    #[test]
    fn devices_deduplicated_in_order() {
        let d = ConfigDiff {
            changes: vec![
                ConfigChange::SetInterfaceEnabled {
                    device: "r2".into(),
                    iface: "e0".into(),
                    enabled: false,
                },
                ConfigChange::SetInterfaceEnabled {
                    device: "r1".into(),
                    iface: "e0".into(),
                    enabled: false,
                },
                ConfigChange::SetInterfaceEnabled {
                    device: "r2".into(),
                    iface: "e1".into(),
                    enabled: true,
                },
            ],
        };
        assert_eq!(d.devices(), vec!["r2", "r1"]);
    }

    #[test]
    fn summaries_mention_device_and_object() {
        let c = ConfigChange::SetInterfaceEnabled {
            device: "r3".into(),
            iface: "Gi0/2".into(),
            enabled: false,
        };
        assert_eq!(c.summary(), "r3: Gi0/2 shutdown");
        assert_eq!(c.device(), "r3");
        assert_eq!(c.interface(), Some("Gi0/2"));
    }
}
