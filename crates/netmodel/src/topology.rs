//! The network: a set of devices plus the physical links between their
//! interfaces, with the graph algorithms the rest of the system needs
//! (neighbor queries for the *Neighbor* baseline, path enumeration for
//! task-driven twin slicing, connectivity checks for the routing engine).

use crate::device::{Device, DeviceKind};
use crate::ip::Prefix;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::net::Ipv4Addr;

/// A stable index identifying a device inside one [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceIdx(pub usize);

impl fmt::Display for DeviceIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A physical link joining two device interfaces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    pub a: DeviceIdx,
    pub a_iface: String,
    pub b: DeviceIdx,
    pub b_iface: String,
}

impl Link {
    /// The far end of the link from `from`, if `from` is an endpoint.
    pub fn peer_of(&self, from: DeviceIdx) -> Option<(DeviceIdx, &str)> {
        if self.a == from {
            Some((self.b, &self.b_iface))
        } else if self.b == from {
            Some((self.a, &self.a_iface))
        } else {
            None
        }
    }

    /// The interface name `from` uses on this link, if `from` is an endpoint.
    pub fn iface_of(&self, from: DeviceIdx) -> Option<&str> {
        if self.a == from {
            Some(&self.a_iface)
        } else if self.b == from {
            Some(&self.b_iface)
        } else {
            None
        }
    }
}

/// Errors raised while assembling a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    DuplicateDevice(String),
    UnknownDevice(String),
    UnknownInterface(String, String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DuplicateDevice(d) => write!(f, "duplicate device {d:?}"),
            TopologyError::UnknownDevice(d) => write!(f, "unknown device {d:?}"),
            TopologyError::UnknownInterface(d, i) => write!(f, "unknown interface {d:?}.{i:?}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A complete network: devices, links, and a name index.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Network {
    devices: Vec<Device>,
    links: Vec<Link>,
    by_name: HashMap<String, DeviceIdx>,
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Adds a device; names must be unique.
    pub fn add_device(&mut self, device: Device) -> Result<DeviceIdx, TopologyError> {
        if self.by_name.contains_key(&device.name) {
            return Err(TopologyError::DuplicateDevice(device.name.clone()));
        }
        let idx = DeviceIdx(self.devices.len());
        self.by_name.insert(device.name.clone(), idx);
        self.devices.push(device);
        Ok(idx)
    }

    /// Connects `a.a_iface` to `b.b_iface`. Both interfaces must exist.
    ///
    /// An interface may appear in several links: a router LAN port with
    /// multiple hosts behind it is a multi-access segment (hub semantics),
    /// and parallel links between the same router pair model port-channel
    /// redundancy (the university network uses these heavily).
    pub fn add_link(
        &mut self,
        a: &str,
        a_iface: &str,
        b: &str,
        b_iface: &str,
    ) -> Result<(), TopologyError> {
        let ai = self.idx(a)?;
        let bi = self.idx(b)?;
        for (d, i) in [(ai, a_iface), (bi, b_iface)] {
            if self.devices[d.0].config.interface(i).is_none() {
                return Err(TopologyError::UnknownInterface(
                    self.devices[d.0].name.clone(),
                    i.to_string(),
                ));
            }
        }
        self.links.push(Link {
            a: ai,
            a_iface: a_iface.to_string(),
            b: bi,
            b_iface: b_iface.to_string(),
        });
        Ok(())
    }

    /// Resolves a device name to its index.
    pub fn idx(&self, name: &str) -> Result<DeviceIdx, TopologyError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| TopologyError::UnknownDevice(name.to_string()))
    }

    /// Resolves a device name, panicking with a clear message if missing.
    /// Convenience for tests and generators where absence is a bug.
    pub fn idx_of(&self, name: &str) -> DeviceIdx {
        self.idx(name)
            .unwrap_or_else(|e| panic!("{e} in network with {} devices", self.devices.len()))
    }

    /// The device at `idx`.
    pub fn device(&self, idx: DeviceIdx) -> &Device {
        &self.devices[idx.0]
    }

    /// The device at `idx`, mutably.
    pub fn device_mut(&mut self, idx: DeviceIdx) -> &mut Device {
        &mut self.devices[idx.0]
    }

    /// The device named `name`, if present.
    pub fn device_by_name(&self, name: &str) -> Option<&Device> {
        self.by_name.get(name).map(|i| &self.devices[i.0])
    }

    /// The device named `name`, mutably, if present.
    pub fn device_by_name_mut(&mut self, name: &str) -> Option<&mut Device> {
        let idx = *self.by_name.get(name)?;
        Some(&mut self.devices[idx.0])
    }

    /// Iterator over `(index, device)` pairs.
    pub fn devices(&self) -> impl Iterator<Item = (DeviceIdx, &Device)> {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, d)| (DeviceIdx(i), d))
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Devices of a given kind.
    pub fn devices_of_kind(&self, kind: DeviceKind) -> Vec<DeviceIdx> {
        self.devices()
            .filter(|(_, d)| d.kind == kind)
            .map(|(i, _)| i)
            .collect()
    }

    /// The first link attached to `(device, iface)`, if any.
    pub fn link_at(&self, device: DeviceIdx, iface: &str) -> Option<&Link> {
        self.links
            .iter()
            .find(|l| l.iface_of(device) == Some(iface))
    }

    /// All links attached to `(device, iface)` — more than one on
    /// multi-access segments.
    pub fn links_at(&self, device: DeviceIdx, iface: &str) -> Vec<&Link> {
        self.links
            .iter()
            .filter(|l| l.iface_of(device) == Some(iface))
            .collect()
    }

    /// The devices+interfaces on the far side of `(device, iface)`.
    pub fn peers_of(&self, device: DeviceIdx, iface: &str) -> Vec<(DeviceIdx, String)> {
        self.links_at(device, iface)
            .into_iter()
            .filter_map(|l| l.peer_of(device))
            .map(|(d, i)| (d, i.to_string()))
            .collect()
    }

    /// Whether both endpoint interfaces of `link` are administratively up.
    pub fn link_is_up(&self, link: &Link) -> bool {
        let up = |d: DeviceIdx, i: &str| {
            self.devices[d.0]
                .config
                .interface(i)
                .map(|x| x.is_up())
                .unwrap_or(false)
        };
        up(link.a, &link.a_iface) && up(link.b, &link.b_iface)
    }

    /// Whether any link at `(device, iface)` is usable end-to-end.
    pub fn link_up(&self, device: DeviceIdx, iface: &str) -> bool {
        self.links_at(device, iface)
            .into_iter()
            .any(|l| self.link_is_up(l))
    }

    /// Direct neighbors of `device` over *up* links: `(peer, local iface,
    /// peer iface)`.
    pub fn neighbors(&self, device: DeviceIdx) -> Vec<(DeviceIdx, String, String)> {
        let mut out = Vec::new();
        for l in &self.links {
            if let Some((peer, peer_iface)) = l.peer_of(device) {
                let local = l.iface_of(device).expect("endpoint checked").to_string();
                if self.link_is_up(l) {
                    out.push((peer, local, peer_iface.to_string()));
                }
            }
        }
        out
    }

    /// Direct neighbors regardless of link state (topology-only view, used
    /// by the *Neighbor* access baseline).
    pub fn neighbors_any_state(&self, device: DeviceIdx) -> Vec<DeviceIdx> {
        let mut out: Vec<DeviceIdx> = self
            .links
            .iter()
            .filter_map(|l| l.peer_of(device).map(|(d, _)| d))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Shortest path (in hops, over up links) from `src` to `dst`,
    /// inclusive of both endpoints. `None` if disconnected.
    pub fn shortest_path(&self, src: DeviceIdx, dst: DeviceIdx) -> Option<Vec<DeviceIdx>> {
        if src == dst {
            return Some(vec![src]);
        }
        let mut prev: HashMap<DeviceIdx, DeviceIdx> = HashMap::new();
        let mut seen: HashSet<DeviceIdx> = HashSet::from([src]);
        let mut q = VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            for (v, _, _) in self.neighbors(u) {
                if seen.insert(v) {
                    prev.insert(v, u);
                    if v == dst {
                        let mut path = vec![dst];
                        let mut cur = dst;
                        while let Some(&p) = prev.get(&cur) {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    q.push_back(v);
                }
            }
        }
        None
    }

    /// Every device lying on *some* shortest path between `src` and `dst`
    /// (the union over equal-cost paths). This is the seed set for
    /// task-driven twin slicing.
    pub fn shortest_path_union(&self, src: DeviceIdx, dst: DeviceIdx) -> HashSet<DeviceIdx> {
        let df = self.bfs_distances(src);
        let db = self.bfs_distances(dst);
        let Some(&total) = df.get(&dst) else {
            return HashSet::new();
        };
        self.devices()
            .filter_map(|(i, _)| match (df.get(&i), db.get(&i)) {
                (Some(a), Some(b)) if a + b == total => Some(i),
                _ => None,
            })
            .collect()
    }

    /// Every device on *some* designed shortest path between `src` and
    /// `dst`, ignoring interface state — the network as cabled, not as
    /// currently (mis)behaving. Twin slicing and privilege derivation use
    /// this so the root cause of a broken path is still inside the set.
    pub fn shortest_path_union_any_state(
        &self,
        src: DeviceIdx,
        dst: DeviceIdx,
    ) -> HashSet<DeviceIdx> {
        let df = self.bfs_distances_any_state(src);
        let db = self.bfs_distances_any_state(dst);
        let Some(&total) = df.get(&dst) else {
            return HashSet::new();
        };
        self.devices()
            .filter_map(|(i, _)| match (df.get(&i), db.get(&i)) {
                (Some(a), Some(b)) if a + b == total => Some(i),
                _ => None,
            })
            .collect()
    }

    /// BFS hop distances from `src` over all links, regardless of state.
    pub fn bfs_distances_any_state(&self, src: DeviceIdx) -> HashMap<DeviceIdx, usize> {
        let mut dist = HashMap::from([(src, 0usize)]);
        let mut q = VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            let du = dist[&u];
            for v in self.neighbors_any_state(u) {
                dist.entry(v).or_insert_with(|| {
                    q.push_back(v);
                    du + 1
                });
            }
        }
        dist
    }

    /// BFS hop distances from `src` over up links.
    pub fn bfs_distances(&self, src: DeviceIdx) -> HashMap<DeviceIdx, usize> {
        let mut dist = HashMap::from([(src, 0usize)]);
        let mut q = VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            let du = dist[&u];
            for (v, _, _) in self.neighbors(u) {
                dist.entry(v).or_insert_with(|| {
                    q.push_back(v);
                    du + 1
                });
            }
        }
        dist
    }

    /// Connected components over up links; each component is sorted.
    pub fn components(&self) -> Vec<Vec<DeviceIdx>> {
        let mut seen: HashSet<DeviceIdx> = HashSet::new();
        let mut comps = Vec::new();
        for (i, _) in self.devices() {
            if seen.contains(&i) {
                continue;
            }
            let dist = self.bfs_distances(i);
            let mut comp: Vec<DeviceIdx> = dist.keys().copied().collect();
            comp.sort();
            seen.extend(comp.iter().copied());
            comps.push(comp);
        }
        comps
    }

    /// The device owning address `ip` (exact interface-address match).
    pub fn owner_of(&self, ip: Ipv4Addr) -> Option<DeviceIdx> {
        self.devices().find_map(|(i, d)| {
            if d.addresses().contains(&ip) {
                Some(i)
            } else {
                None
            }
        })
    }

    /// Devices with an interface inside `prefix`.
    pub fn devices_in_subnet(&self, prefix: Prefix) -> Vec<DeviceIdx> {
        self.devices()
            .filter(|(_, d)| d.addresses().iter().any(|a| prefix.contains(*a)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Total configuration size in printed lines, the Table 1 "lines of
    /// configs" metric.
    pub fn total_config_lines(&self) -> usize {
        self.devices
            .iter()
            .map(|d| crate::printer::print_config(&d.config).lines().count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::Interface;

    /// r1 -- r2 -- r3 with a spur host h1 on r1.
    fn line_net() -> Network {
        let mut n = Network::new();
        for name in ["r1", "r2", "r3"] {
            let mut d = Device::new(name, DeviceKind::Router);
            d.config.upsert_interface(Interface::new("e0"));
            d.config.upsert_interface(Interface::new("e1"));
            d.config.upsert_interface(Interface::new("e2"));
            n.add_device(d).unwrap();
        }
        let mut h = Device::new("h1", DeviceKind::Host);
        h.config.upsert_interface(Interface::new("eth0"));
        n.add_device(h).unwrap();
        n.add_link("r1", "e0", "r2", "e0").unwrap();
        n.add_link("r2", "e1", "r3", "e0").unwrap();
        n.add_link("r1", "e1", "h1", "eth0").unwrap();
        n
    }

    #[test]
    fn duplicate_device_rejected() {
        let mut n = Network::new();
        n.add_device(Device::new("r1", DeviceKind::Router)).unwrap();
        assert!(matches!(
            n.add_device(Device::new("r1", DeviceKind::Router)),
            Err(TopologyError::DuplicateDevice(_))
        ));
    }

    #[test]
    fn link_validation() {
        let mut n = line_net();
        assert!(matches!(
            n.add_link("r1", "nope", "r2", "e2"),
            Err(TopologyError::UnknownInterface(_, _))
        ));
        assert!(matches!(
            n.add_link("zz", "e0", "r3", "e2"),
            Err(TopologyError::UnknownDevice(_))
        ));
        // Multi-access reuse of an interface is allowed (hub semantics).
        assert!(n.add_link("r1", "e2", "r3", "e2").is_ok());
        assert!(n.add_link("r1", "e2", "r2", "e2").is_ok());
        assert_eq!(n.peers_of(n.idx_of("r1"), "e2").len(), 2);
    }

    #[test]
    fn neighbors_and_paths() {
        let n = line_net();
        let (r1, r2, r3) = (n.idx_of("r1"), n.idx_of("r2"), n.idx_of("r3"));
        assert_eq!(n.neighbors_any_state(r2), vec![r1, r3]);
        let p = n.shortest_path(r1, r3).unwrap();
        assert_eq!(p, vec![r1, r2, r3]);
        assert_eq!(n.shortest_path(r1, r1).unwrap(), vec![r1]);
    }

    #[test]
    fn down_interface_cuts_path() {
        let mut n = line_net();
        n.device_by_name_mut("r2")
            .unwrap()
            .config
            .interface_mut("e1")
            .unwrap()
            .enabled = false;
        let (r1, r3) = (n.idx_of("r1"), n.idx_of("r3"));
        assert!(n.shortest_path(r1, r3).is_none());
        // Topology-only neighbor view is unaffected.
        assert_eq!(n.neighbors_any_state(n.idx_of("r2")).len(), 2);
    }

    #[test]
    fn shortest_path_union_on_diamond() {
        // r1 -- {r2, r3} -- r4 diamond: both middles are on some shortest path.
        let mut n = Network::new();
        for name in ["r1", "r2", "r3", "r4"] {
            let mut d = Device::new(name, DeviceKind::Router);
            d.config.upsert_interface(Interface::new("e0"));
            d.config.upsert_interface(Interface::new("e1"));
            n.add_device(d).unwrap();
        }
        n.add_link("r1", "e0", "r2", "e0").unwrap();
        n.add_link("r1", "e1", "r3", "e0").unwrap();
        n.add_link("r2", "e1", "r4", "e0").unwrap();
        n.add_link("r3", "e1", "r4", "e1").unwrap();
        let union = n.shortest_path_union(n.idx_of("r1"), n.idx_of("r4"));
        assert_eq!(union.len(), 4);
    }

    #[test]
    fn components_split() {
        let mut n = line_net();
        assert_eq!(n.components().len(), 1);
        // Cut r1-r2.
        n.device_by_name_mut("r1")
            .unwrap()
            .config
            .interface_mut("e0")
            .unwrap()
            .enabled = false;
        assert_eq!(n.components().len(), 2);
    }

    #[test]
    fn owner_of_address() {
        let mut n = line_net();
        n.device_by_name_mut("r3")
            .unwrap()
            .config
            .interface_mut("e1")
            .unwrap()
            .address = Some(crate::iface::InterfaceAddress::new(
            "10.0.9.1".parse().unwrap(),
            24,
        ));
        assert_eq!(
            n.owner_of("10.0.9.1".parse().unwrap()),
            Some(n.idx_of("r3"))
        );
        assert_eq!(n.owner_of("10.0.9.2".parse().unwrap()), None);
        let subnet: Prefix = "10.0.9.0/24".parse().unwrap();
        assert_eq!(n.devices_in_subnet(subnet), vec![n.idx_of("r3")]);
    }
}
