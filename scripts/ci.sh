#!/usr/bin/env bash
# Full CI gate: formatting, lints, release build, all tests.
# Everything runs offline — dependencies are vendored under vendor/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> cargo doc (deny warnings)"
# Gate our own crates only; the vendored stand-ins document separately.
doc_pkgs=()
for crate in crates/*/Cargo.toml; do
    doc_pkgs+=(-p "$(sed -n 's/^name = "\(.*\)"/\1/p' "$crate" | head -1)")
done
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q "${doc_pkgs[@]}"

echo "==> service demo (headless, flight recorder must stay quiet)"
demo_out="$(cargo run --release --example service_demo 2>&1)" || {
    echo "$demo_out"
    echo "service_demo exited non-zero"
    exit 1
}
if grep -q "FLIGHT-RECORDER DUMP" <<<"$demo_out"; then
    echo "$demo_out"
    echo "service_demo tripped the flight recorder on a healthy run"
    exit 1
fi
# The obs drill inside the demo: a quiet broker fires zero alerts, the
# excursion broker fires exactly one.
if ! grep -q "obs quiet: 0 alerts" <<<"$demo_out"; then
    echo "$demo_out"
    echo "service_demo: quiet broker fired alerts (or drill missing)"
    exit 1
fi
if ! grep -q "obs drill: 1 alert" <<<"$demo_out"; then
    echo "$demo_out"
    echo "service_demo: excursion broker did not fire exactly one alert"
    exit 1
fi
# The persistence drills: archived audit chains reject tampering, and a
# power-cut journaling broker recovers every acknowledged commit.
if ! grep -q "tampered copy rejected" <<<"$demo_out"; then
    echo "$demo_out"
    echo "service_demo: audit archival drill missing or tamper undetected"
    exit 1
fi
if ! grep -q "durability drill: 2 acked commits recovered" <<<"$demo_out"; then
    echo "$demo_out"
    echo "service_demo: durability drill missing or commits lost"
    exit 1
fi
# The demo now runs over a real Unix-domain socket through heimdall-net;
# the server must drain and shut down cleanly (socket unlinked, journals
# synced) at the end of the run.
if ! grep -q "net shutdown: clean" <<<"$demo_out"; then
    echo "$demo_out"
    echo "service_demo: net server did not shut down cleanly"
    exit 1
fi
# The push-subscription drill: an audit append arrives as a pushed
# event (no polling), and a sessionless tenant's fleet-scoped
# subscription is denied with a typed, recorded rejection.
if ! grep -q "push drill: audit append seq" <<<"$demo_out"; then
    echo "$demo_out"
    echo "service_demo: push-subscription drill missing or event not pushed"
    exit 1
fi
if ! grep -q "sessionless fleet subscription denied (1 recorded)" <<<"$demo_out"; then
    echo "$demo_out"
    echo "service_demo: sessionless subscription was not denied-and-counted"
    exit 1
fi

echo "==> crash-recovery drills (durable broker over heimdall-store)"
cargo test --release -q --test store_recovery

echo "==> static-analysis gate (privilege analyzer + netmodel lint)"
# Lints every generated network and analyzes the derived spec for every
# standard ticket shape; any Error-severity finding exits non-zero. Also
# self-tests that the analyzer still catches the seeded wildcard spec.
gate_out="$(cargo run --release --example analyze_gate)" || {
    echo "$gate_out"
    echo "analyze_gate found error-severity findings (or its self-test failed)"
    exit 1
}
if ! grep -q "analysis gate: clean" <<<"$gate_out"; then
    echo "$gate_out"
    echo "analyze_gate did not report a clean gate"
    exit 1
fi

echo "==> obs bench (json smoke)"
cargo bench --bench obs -- --json --test
test -s BENCH_obs.json || { echo "BENCH_obs.json missing"; exit 1; }

echo "==> wal bench (json smoke; asserts group commit >= 5x per-record sync)"
cargo bench --bench wal -- --json --test
test -s BENCH_wal.json || { echo "BENCH_wal.json missing"; exit 1; }

echo "==> service-net bench (json smoke over real TCP sockets)"
# Writes the git-tracked BENCH_service.json; the smoke run covers two
# concurrency levels and must report p50/p99 for each. (The committed
# artifact comes from the full run: cargo bench --bench service_net -- --json)
bench_bak="$(mktemp)"
cp BENCH_service.json "$bench_bak" 2>/dev/null || true
cargo bench --bench service_net -- --json --test
test -s BENCH_service.json || { echo "BENCH_service.json missing"; exit 1; }
grep -q '"p50_ns"' BENCH_service.json || { echo "BENCH_service.json lacks p50"; exit 1; }
grep -q '"p99_ns"' BENCH_service.json || { echo "BENCH_service.json lacks p99"; exit 1; }
grep -q '"subscriber_fanout"' BENCH_service.json || { echo "BENCH_service.json lacks subscriber fan-out sweep"; exit 1; }
# Put the tracked full-run artifact back over the smoke output.
if [ -s "$bench_bak" ]; then mv "$bench_bak" BENCH_service.json; else rm -f "$bench_bak"; fi

echo "CI green."
