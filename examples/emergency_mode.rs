//! Emergency mode (§7): when the twin cannot reproduce the problem.
//!
//! ```text
//! cargo run --release --example emergency_mode
//! ```
//!
//! The ISP has renumbered the peering and the border's upstream optics are
//! dark — carrier loss is exactly the kind of physical condition an
//! emulated twin cannot reproduce. The technician activates emergency
//! mode: commands go straight to production, but the reference monitor
//! still checks every command against the `Privilege_msp`, every mutating
//! command is policy-vetted on a shadow copy before it commits, and the
//! whole session lands in the enclave-sealed audit trail.

use heimdall::emergency::EmergencySession;
use heimdall::msp::issues::{inject_issue, IssueKind};
use heimdall::nets::enterprise;
use heimdall::privilege::derive::derive_privileges;
use heimdall::translate::harden;
use heimdall::workflow::probe_ok;

fn main() {
    let (net, meta, policies) = enterprise();
    let mut production = net;
    let issue = inject_issue(&mut production, &meta, IssueKind::Isp).expect("isp issue");
    println!("ticket {}: {}", issue.id, issue.title);
    assert!(!probe_ok(&production, &issue));

    let task = heimdall::privilege::derive::Task {
        kind: issue.task_kind,
        affected: issue.affected.clone(),
    };
    let spec = harden(
        derive_privileges(&production, &task),
        &production,
        &policies,
        &issue.affected,
    );

    let mut session = EmergencySession::activate(
        "alice",
        production,
        spec,
        policies.clone(),
        "upstream carrier loss: not reproducible in emulation",
    );

    for (device, cmd) in &issue.fix {
        match session.exec(device, cmd) {
            Ok(out) if out.is_empty() => println!("{device}# {cmd}\n   ok"),
            Ok(out) => println!("{device}# {cmd}\n   {}", out.lines().next().unwrap_or("")),
            Err(e) => println!("{device}# {cmd}\n   {e}"),
        }
    }

    // Even in an emergency, the guardrails hold:
    println!("\n-- attempting what emergencies do NOT excuse --");
    for (device, cmd) in [("bdr1", "write erase"), ("core1", "show running-config")] {
        match session.exec(device, cmd) {
            Ok(_) => println!("{device}# {cmd}\n   (allowed?!)"),
            Err(e) => println!("{device}# {cmd}\n   {e}"),
        }
    }
    // And the policy layer vetoes harmful-but-privileged commands:
    match session.exec("bdr1", "interface Gi0/0 shutdown") {
        Err(e) => println!("bdr1# interface Gi0/0 shutdown\n   {e}"),
        Ok(_) => println!("bdr1# interface Gi0/0 shutdown\n   (allowed?!)"),
    }

    assert!(session.verify_audit_integrity());
    let (healed, audit) = session.deactivate();
    println!("\nissue resolved: {}", probe_ok(&healed, &issue));
    println!("audit entries ({} total):", audit.len());
    for e in &audit.entries {
        println!("  [{}] {}", e.seq, e.detail);
    }
}
