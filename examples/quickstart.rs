//! Quickstart: the Heimdall workflow in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the enterprise evaluation network, breaks it the way Figure 6
//! does (a firewall ACL entry flipped to deny), and resolves the ticket
//! through the full three-step Heimdall workflow.

use heimdall::msp::issues::{inject_issue, IssueKind};
use heimdall::nets::enterprise;
use heimdall::workflow::{probe_ok, run_heimdall};

fn main() {
    // A healthy production network + the policies mined from it
    // (config2spec-style: 21 policies for the enterprise network).
    let (net, meta, policies) = enterprise();
    println!(
        "production: {} devices, {} links, {} policies",
        net.device_count(),
        net.link_count(),
        policies.len()
    );

    // Something breaks: fw1's LAN2->DMZ permit becomes a deny.
    let mut production = net;
    let issue = inject_issue(&mut production, &meta, IssueKind::AclDeny).expect("acl issue");
    println!("\nticket {}: {}", issue.id, issue.title);
    assert!(!probe_ok(&production, &issue), "the symptom is real");

    // The Heimdall workflow: derive Privilege_msp, debug in a sanitized
    // twin, verify + schedule + apply through the enforcer.
    let run = run_heimdall(&production, &issue, &policies);
    println!(
        "\ntwin exposed {} of {} devices",
        run.twin_devices,
        production.device_count()
    );
    println!("privilege predicates derived: {}", run.predicates);
    println!(
        "commands executed: {} (denied: {})",
        run.commands, run.denials
    );
    println!("change-set size: {}", run.changes);
    println!("enforcer verdict: {:?}", run.outcome.report.verdict);
    println!("issue resolved in production: {}", run.resolved);
    println!(
        "audit trail: {} chained entries, integrity {}",
        run.audit.len(),
        if run.audit.verify_chain().is_ok() {
            "OK"
        } else {
            "BROKEN"
        }
    );

    assert!(run.resolved && run.outcome.applied());
    println!("\nticket {} closed.", issue.id);
}
