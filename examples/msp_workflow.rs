//! The complete MSP engagement, narrated: ticket filed → privilege
//! derivation → twin debugging at the console → escalation → enforcement →
//! rollout → audit review → ticket closed.
//!
//! ```text
//! cargo run --release --example msp_workflow
//! ```
//!
//! The scenario is the paper's running example: a host cannot reach the
//! web service, the root cause is an ACL on the firewall, and the
//! technician starts with connectivity privileges and must escalate into
//! ACL rights mid-ticket (§7's privilege-escalation workflow).

use heimdall::enforcer::enclave::Platform;
use heimdall::enforcer::pipeline::EnforcerPipeline;
use heimdall::msp::issues::{inject_issue, IssueKind};
use heimdall::msp::ticket::{Ticket, TicketSystem};
use heimdall::nets::enterprise;
use heimdall::privilege::derive::{derive_privileges, TaskKind};
use heimdall::privilege::escalate::{decide_escalation, EscalationRequest};
use heimdall::privilege::model::Action;
use heimdall::twin::session::TwinSession;
use heimdall::twin::slice::slice_for_task;
use heimdall::workflow::probe_ok;

fn main() {
    let (net, meta, policies) = enterprise();
    let mut production = net;
    let issue = inject_issue(&mut production, &meta, IssueKind::AclDeny).expect("acl issue");

    // 1. The monitoring system files a ticket. Triage calls it a plain
    //    connectivity problem — nobody knows it is an ACL yet.
    let mut tickets = TicketSystem::new();
    tickets.file(Ticket::new(
        &issue.id,
        &issue.title,
        issue.affected.clone(),
        TaskKind::Connectivity,
    ));
    let ticket = tickets
        .assign_next("alice")
        .expect("one open ticket")
        .clone();
    println!(
        "== ticket {} assigned to alice: {}",
        ticket.id, ticket.title
    );

    // 2. Heimdall derives least privileges for a *connectivity* task and
    //    builds the twin.
    let task = ticket.task();
    let mut spec = derive_privileges(&production, &task);
    let twin = slice_for_task(&production, &task);
    println!(
        "== twin: {} of {} devices exposed: {:?}",
        twin.included.len(),
        production.device_count(),
        twin.included
    );
    let mut session = TwinSession::open("alice", twin, spec.clone());
    println!("{}", session.view().render());

    // 3. Debugging at the console.
    let run = |s: &mut TwinSession, d: &str, c: &str| {
        let out = match s.exec(d, c) {
            Ok(o) => o,
            Err(e) => format!("{e}"),
        };
        println!("{d}# {c}");
        for line in out.lines().take(6) {
            println!("   {line}");
        }
        out
    };
    run(&mut session, "h4", "ping 10.2.1.10");
    run(&mut session, "h4", "traceroute 10.2.1.10");
    // Automated localization reads the same trace evidence:
    if let Some(d) = heimdall::msp::diagnose::localize(
        session.emu_mut(),
        "h4",
        "10.2.1.10".parse().expect("literal"),
    ) {
        println!(
            "== diagnosis: {:?} at {} (suggested task: {:?})",
            d.class, d.device, d.suggested_task
        );
    }
    // The trace names fw1's ACL; alice tries to inspect and edit it — but
    // a connectivity ticket carries no ACL rights.
    let denied = session.exec("fw1", "no access-list 100 line 2");
    println!(
        "fw1# no access-list 100 line 2\n   {:?}",
        denied.err().map(|e| e.to_string())
    );

    // 4. Escalation: connectivity -> access-control, on an on-path device.
    let req = EscalationRequest {
        technician: "alice".into(),
        action: Action::ModifyAcl,
        device: "fw1".into(),
        justification: "trace shows acl 100 denying LAN2 toward the DMZ".into(),
    };
    let decision = decide_escalation(&production, &task, &mut spec, &req);
    println!(
        "== escalation request ({} on fw1): {decision:?}",
        req.action
    );
    session.monitor_mut().set_spec(spec.clone());

    // 5. Fix, verify inside the twin.
    run(&mut session, "fw1", "show access-lists");
    run(&mut session, "fw1", "no access-list 100 line 2");
    run(
        &mut session,
        "fw1",
        "access-list 100 line 2 permit ip 10.1.2.0 0.0.0.255 10.2.1.0 0.0.0.255",
    );
    run(&mut session, "h4", "ping 10.2.1.10");

    // 6. Close the session; the enforcer takes over.
    let (changes, monitor) = session.finish();
    println!(
        "== change-set: {} changes; {} commands mediated, {} denied",
        changes.len(),
        monitor.events().len(),
        monitor.denials().len()
    );
    let platform = Platform::new("customer-host");
    let mut enforcer = EnforcerPipeline::launch(&platform);
    // The customer attests the enforcer before trusting it.
    let report = enforcer.enclave().attest([7u8; 16]);
    println!(
        "== enclave attested: measurement {}...",
        &enforcer.enclave().measurement_hex()[..16]
    );
    platform
        .verify_report(&report)
        .expect("attestation verifies");

    let outcome = enforcer.process("alice", &production, &changes, &policies, &spec);
    println!("== enforcer verdict: {:?}", outcome.report.verdict);
    let updated = outcome.updated_production.expect("accepted");
    assert!(probe_ok(&updated, &issue));

    // 7. Audit review + ticket close.
    println!("== audit trail ({} entries):", enforcer.audit().len());
    for e in &enforcer.audit().entries {
        println!("   [{}] {:?} {}: {}", e.seq, e.kind, e.actor, e.detail);
    }
    assert!(enforcer.verify_audit_integrity());
    tickets.resolve(&ticket.id, "acl 100 line 2 restored to permit");
    tickets.close(&ticket.id);
    println!("== ticket {} closed.", ticket.id);

    // The customer's security team gets the incident report.
    let report = heimdall::enforcer::IncidentReport {
        ticket_id: &ticket.id,
        technician: "alice",
        summary: &ticket.title,
        changes: &changes,
        enforcement: &outcome.report,
        schedule: outcome.schedule.as_ref(),
        audit: enforcer.audit(),
    };
    println!("\n{}", report.render());
}
