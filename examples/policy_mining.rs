//! Policy mining and the privilege DSL front-ends.
//!
//! ```text
//! cargo run --release --example policy_mining
//! ```
//!
//! Shows the config2spec-analog miner deriving the enterprise network's 21
//! policies from its healthy data plane, the JSON/DSL privilege front-ends
//! round-tripping a specification, and a differential check catching a bad
//! change.

use heimdall::nets::enterprise;
use heimdall::privilege::{dsl, json};
use heimdall::verify::differential::differential_check;
use heimdall::verify::policy::Policy;

fn main() {
    let (net, _meta, policies) = enterprise();

    println!("=== mined specification ({} policies) ===", policies.len());
    for p in &policies.policies {
        println!("  {p}");
    }

    // The JSON interchange form an admin would edit.
    println!("\n=== policy set as JSON (first 20 lines) ===");
    for line in policies.to_json().lines().take(20) {
        println!("{line}");
    }

    // The privilege DSL and its JSON front-end.
    let text = "\
# privileges for ticket TCK-ACL
allow(view, *)
allow(ping, *)
allow(acl[100], fw1)
allow(ifstate, fw1.Gi0/3)
deny(*, h7)
";
    let spec = dsl::parse(text).expect("valid DSL");
    println!("\n=== Privilege_msp DSL ===\n{text}");
    println!("=== same specification as JSON ===");
    println!("{}", json::to_json(&spec, Some("TCK-ACL")));

    // Differential verification: what would this change break?
    let mut bad = net.clone();
    bad.device_by_name_mut("acc1")
        .expect("acc1")
        .config
        .interface_mut("Gi0/0")
        .expect("uplink")
        .enabled = false;
    let (report, _, _) = differential_check(&net, &bad, &policies);
    println!("=== differential check: shutting acc1's uplink would break ===");
    for id in &report.newly_violated {
        println!("  {id}");
    }
    assert!(!report.is_safe());

    // Policies involving the sensitive host are easy to pull out.
    let sensitive: Vec<&Policy> = policies.involving_host("h7");
    println!("\npolicies naming sensitive host h7: {}", sensitive.len());
}
