//! Regenerates the paper's evaluation artifacts as text tables:
//! Table 1, Figure 7, Figure 8, and Figure 9.
//!
//! ```text
//! cargo run --release --example attack_surface [university-stride]
//! ```
//!
//! The optional argument samples the university interface-down sweep
//! (default 2; use 1 for the paper's full sweep — slower).

fn main() {
    let stride: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);

    println!("=== Table 1: evaluation networks ===");
    println!("paper:   enterprise 9/9/22/21/1394, university 13/17/92/175/2146");
    println!(
        "{}",
        heimdall::experiments::render_table1(&heimdall::experiments::table1())
    );

    println!("=== Figure 7: time to solve three issues (enterprise) ===");
    println!("paper:   +28 s average overhead (15 s isp ... 42 s vlan), operations dominate");
    println!(
        "{}",
        heimdall::experiments::render_fig7(&heimdall::experiments::fig7())
    );

    println!("=== Figure 8: feasibility vs attack surface (enterprise) ===");
    println!("paper:   Heimdall cuts attack surface by up to ~39 points, feasibility ~= All");
    println!(
        "{}",
        heimdall::experiments::render_surface(&heimdall::experiments::fig8())
    );

    println!("=== Figure 9: feasibility vs attack surface (university, stride {stride}) ===");
    println!("paper:   Heimdall cuts attack surface by up to ~40 points, feasibility ~= All");
    println!(
        "{}",
        heimdall::experiments::render_surface(&heimdall::experiments::fig9(stride))
    );
}
