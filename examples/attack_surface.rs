//! Regenerates the paper's evaluation artifacts as text tables:
//! Table 1, Figure 7, Figure 8, and Figure 9.
//!
//! ```text
//! cargo run --release --example attack_surface [university-stride]
//! ```
//!
//! The optional argument samples the university interface-down sweep
//! (default 2; use 1 for the paper's full sweep — slower).

fn main() {
    let stride: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);

    println!("=== Table 1: evaluation networks ===");
    println!("paper:   enterprise 9/9/22/21/1394, university 13/17/92/175/2146");
    println!(
        "{}",
        heimdall::experiments::render_table1(&heimdall::experiments::table1())
    );

    println!("=== Figure 7: time to solve three issues (enterprise) ===");
    println!("paper:   +28 s average overhead (15 s isp ... 42 s vlan), operations dominate");
    println!(
        "{}",
        heimdall::experiments::render_fig7(&heimdall::experiments::fig7())
    );

    println!("=== Figure 8: feasibility vs attack surface (enterprise) ===");
    println!("paper:   Heimdall cuts attack surface by up to ~39 points, feasibility ~= All");
    println!(
        "{}",
        heimdall::experiments::render_surface(&heimdall::experiments::fig8())
    );

    println!("=== Figure 9: feasibility vs attack surface (university, stride {stride}) ===");
    println!("paper:   Heimdall cuts attack surface by up to ~40 points, feasibility ~= All");
    println!(
        "{}",
        heimdall::experiments::render_surface(&heimdall::experiments::fig9(stride))
    );

    analyzer_drill();
}

/// Static-analysis drill: how much narrower is the derived Privilege_msp
/// than the wildcard grant an MSP would hand out today? The analyzer's
/// over-grant report quantifies the gap per ticket shape.
fn analyzer_drill() {
    use heimdall::analyze::{analyze, Severity};
    use heimdall::privilege::derive::{derive_privileges, Task, TaskKind};
    use heimdall::privilege::dsl;

    println!("=== Analyzer drill: wildcard grant vs. derived minimum (enterprise) ===");
    let g = heimdall::netmodel::gen::enterprise_network();
    let tickets = [
        Task::connectivity(&g.meta.mgmt_host, &g.meta.service_host),
        Task {
            kind: TaskKind::AccessControl,
            affected: vec![g.meta.mgmt_host.clone(), g.meta.service_host.clone()],
        },
        Task {
            kind: TaskKind::IspChange,
            affected: vec![g.meta.border_router.clone()],
        },
    ];
    println!(
        "{:<14} {:>6} {:>8} {:>6} | wildcard findings",
        "ticket", "minim.", "errors", "warns"
    );
    for task in tickets {
        // What today's MSPs get: full control of every affected device.
        let wildcard: String = task
            .affected
            .iter()
            .map(|d| format!("allow(*, {d})\n"))
            .collect();
        let spec = dsl::parse(&wildcard).expect("wildcard spec parses");
        let report = analyze(&g.net, &task, &spec);
        let minimal = derive_privileges(&g.net, &task);
        println!(
            "{:<14} {:>6} {:>8} {:>6} | {}",
            format!("{:?}", task.kind),
            minimal.predicates.len(),
            report.count_at_least(Severity::Error),
            report.count_at_least(Severity::Warning) - report.count_at_least(Severity::Error),
            report.summary()
        );
        for f in report
            .findings
            .iter()
            .filter(|f| f.severity >= Severity::Warning)
            .take(3)
        {
            println!("    {f}");
        }
    }
    println!("(run `cargo run --release --example analyze_gate` for the CI gate)");
}
