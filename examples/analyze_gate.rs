//! CI static-analysis gate.
//!
//! ```text
//! cargo run --release --example analyze_gate
//! ```
//!
//! Two sweeps, both of which must come back free of `Error`-severity
//! findings for the gate to pass:
//!
//! 1. `netmodel` lint over every generated evaluation network;
//! 2. the `heimdall-analyze` privilege analyzer over the spec derived for
//!    every standard ticket shape on those networks.
//!
//! The gate also self-tests: the seeded wildcard spec from the analyzer's
//! documentation *must* trip the error threshold, so a regression that
//! silences the analyzer fails CI too. Exits non-zero on any violation.

use heimdall::analyze::{analyze, codes, Severity};
use heimdall::netmodel::gen::{enterprise_network, university_network, GeneratedNet};
use heimdall::netmodel::lint;
use heimdall::privilege::derive::{derive_privileges, Task, TaskKind};
use heimdall::privilege::dsl;
use std::process::ExitCode;

/// The ticket shapes the examples and experiments exercise, instantiated
/// from a network's own metadata.
fn standard_tickets(g: &GeneratedNet) -> Vec<Task> {
    let mgmt = g.meta.mgmt_host.clone();
    let service = g.meta.service_host.clone();
    let border = g.meta.border_router.clone();
    vec![
        Task::connectivity(&mgmt, &service),
        Task {
            kind: TaskKind::AccessControl,
            affected: vec![mgmt.clone(), service.clone()],
        },
        Task {
            kind: TaskKind::Routing,
            affected: vec![mgmt.clone(), service.clone()],
        },
        Task {
            kind: TaskKind::Vlan,
            affected: vec![service.clone()],
        },
        Task {
            kind: TaskKind::IspChange,
            affected: vec![border.clone()],
        },
        Task {
            kind: TaskKind::Monitoring,
            affected: vec![border],
        },
    ]
}

fn main() -> ExitCode {
    let mut errors = 0usize;

    for g in [enterprise_network(), university_network()] {
        // Sweep 1: structural lint over the generated network itself.
        let findings = lint::lint(&g.net);
        let lint_errors = findings
            .iter()
            .filter(|f| f.severity >= lint::Severity::Error)
            .count();
        println!(
            "lint {:<10} {} findings, {} errors",
            g.meta.name,
            findings.len(),
            lint_errors
        );
        for f in findings
            .iter()
            .filter(|f| f.severity >= lint::Severity::Error)
        {
            println!("  {f}");
        }
        errors += lint_errors;

        // Sweep 2: the privilege analyzer over every derived spec.
        for task in standard_tickets(&g) {
            let spec = derive_privileges(&g.net, &task);
            let report = analyze(&g.net, &task, &spec);
            let errs = report.count_at_least(Severity::Error);
            println!(
                "analyze {:<10} {:?} {:?}: {}",
                g.meta.name,
                task.kind,
                task.affected,
                report.summary()
            );
            if errs > 0 {
                println!("{report}");
            }
            errors += errs;
        }
    }

    // Self-test: the analyzer must still catch the seeded wildcard spec.
    let g = enterprise_network();
    let task = Task {
        kind: TaskKind::AccessControl,
        affected: vec![g.meta.mgmt_host.clone(), g.meta.service_host.clone()],
    };
    let seeded = dsl::parse("allow(*, fw1)\nallow(view, fw1)\n").expect("seeded spec parses");
    let report = analyze(&g.net, &task, &seeded);
    let caught = report.has_code(codes::OVER_GRANT)
        && report.has_code(codes::ESCALATION_DESTRUCTIVE)
        && report.has_code(codes::SHADOWED)
        && report.max_severity() == Some(Severity::Error);
    if !caught {
        println!("analysis gate: SELF-TEST FAILED — seeded defects not detected:\n{report}");
        errors += 1;
    }

    if errors > 0 {
        println!("analysis gate: {errors} error-severity finding(s)");
        ExitCode::FAILURE
    } else {
        println!("analysis gate: clean");
        ExitCode::SUCCESS
    }
}
