//! Serving-mode demo: one broker fleet, one shared production network,
//! 33 technicians working at the same time over a real Unix-domain
//! socket through the heimdall-net front-end.
//!
//! Technician 0 holds the canonical Figure-6 repair ticket (the fw1 ACL
//! misconfiguration); the other 32 run routing tickets that each add one
//! unique static route on fw1 — maximal base-fingerprint contention.
//! Every technician authenticates with a per-tenant HMAC handshake and
//! opens sessions attributed to that connection identity. The demo
//! asserts the broker's contract end to end: every commit lands exactly
//! once, the ACL repair heals the mined policies, and the shared audit
//! chain verifies. It then walks the observability surface: the
//! Prometheus exposition, an audit-record trace id resolved back to its
//! span tree via `TraceQuery`, and a flight-recorder drill on a second
//! broker. On the main broker no anomaly may fire; if one does, the demo
//! prints a `FLIGHT-RECORDER DUMP` line (which CI greps for) and exits
//! non-zero. Two closing drills exercise the persistence story: the
//! audit chain is archived to JSON, reloaded verified, and a tampered
//! copy rejected; then a journaling broker is power-cut mid-service and
//! recovered with every acknowledged commit intact. Finally the net
//! server is shut down gracefully — CI greps for the `net shutdown:
//! clean` line. Exit code 0 means all of that held.

use heimdall::enforcer::audit::AuditLog;
use heimdall::net::{
    BoundAcceptor, BrokerFleet, ClientError, NetClient, NetConfig, NetServer, RejectReason,
    TenantKeys,
};
use heimdall::netmodel::acl::AclAction;
use heimdall::netmodel::gen::enterprise_network;
use heimdall::netmodel::topology::Network;
use heimdall::obs::{ObsConfig, ObsEvent, Resolution, SloRule, Topic};
use heimdall::privilege::derive::{Task, TaskKind};
use heimdall::routing::converge;
use heimdall::service::{Broker, BrokerConfig, Request, Response};
use heimdall::store::MemStorage;
use heimdall::telemetry::{RecorderConfig, TelemetryConfig};
use heimdall::verify::checker::check_policies;
use heimdall::verify::mine::{mine_policies, MinerInput};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread;

/// Route-adding technicians, on top of the one ACL-repair technician.
const ROUTE_TECHS: usize = 32;

/// Per-tenant pre-shared key; a real deployment would provision these.
fn key_for(tenant: &str) -> Vec<u8> {
    format!("demo-key-{tenant}").into_bytes()
}

fn connect(path: &Path, tenant: &str) -> NetClient {
    NetClient::connect_uds(path, tenant, &key_for(tenant)).expect("connect + handshake")
}

fn send(conn: &mut NetClient, req: Request) -> Response {
    conn.call(req).expect("net call")
}

/// Opens a session attributed to the connection's authenticated tenant
/// (empty technician field = inherit the handshake identity).
fn open(conn: &mut NetClient, ticket: Task) -> heimdall::service::SessionId {
    let resp = send(
        conn,
        Request::OpenSession {
            technician: String::new(),
            ticket,
        },
    );
    match resp {
        Response::SessionOpened { session, .. } => session,
        other => panic!("{}: expected SessionOpened, got {other:?}", conn.tenant()),
    }
}

fn exec(conn: &mut NetClient, session: heimdall::service::SessionId, device: &str, line: &str) {
    let resp = send(
        conn,
        Request::Exec {
            session,
            device: device.to_string(),
            line: line.to_string(),
        },
    );
    let Response::ExecOutput { .. } = resp else {
        panic!("exec `{line}` on {device}: {resp:?}");
    };
}

/// `(applied, attempts)` from finishing the session.
fn finish(conn: &mut NetClient, session: heimdall::service::SessionId) -> (bool, u32) {
    let resp = send(conn, Request::Finish { session });
    match resp {
        Response::Finished {
            applied, attempts, ..
        } => (applied, attempts),
        other => panic!("expected Finished, got {other:?}"),
    }
}

fn main() {
    // Healthy enterprise → mined intent → the Figure-6 breakage.
    let g = enterprise_network();
    let cp = converge(&g.net);
    let policies = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
    let mut production = g.net;
    production
        .device_by_name_mut("fw1")
        .expect("fw1 exists")
        .config
        .acls
        .get_mut("100")
        .expect("acl 100 exists")
        .entries[1]
        .action = AclAction::Deny;

    let config = BrokerConfig {
        // 33 sessions all editing fw1: stale retries are expected, lost
        // commits are not.
        max_commit_retries: 64,
        telemetry: TelemetryConfig {
            recorder: RecorderConfig {
                // Stale retries are this workload's design, not an
                // anomaly — leave only the denial and p99 triggers armed.
                conflict_burst: 0,
                ..RecorderConfig::default()
            },
            ..TelemetryConfig::default()
        },
        ..BrokerConfig::default()
    };
    let fleet = Arc::new(BrokerFleet::new(vec![Arc::new(Broker::new(
        production, policies, config,
    ))]));

    // Real transport: a Unix-domain socket in the temp dir, one
    // authenticated connection per technician plus a control plane.
    let sock: PathBuf =
        std::env::temp_dir().join(format!("heimdall-demo-{}.sock", std::process::id()));
    let mut keys = TenantKeys::new();
    for i in 0..=ROUTE_TECHS {
        let tenant = format!("tech{i:02}");
        keys.insert(&tenant, &key_for(&tenant));
    }
    keys.insert("control", &key_for("control"));
    let acceptor = BoundAcceptor::uds(&sock).expect("bind UDS");
    let server = NetServer::start(
        Arc::clone(&fleet),
        keys,
        NetConfig::default(),
        vec![acceptor],
    );

    println!(
        "broker up: {} shard(s) on {} serving {} concurrent technician sessions",
        fleet.shard_count(),
        sock.display(),
        ROUTE_TECHS + 1
    );

    let mut handles = Vec::new();

    // Technician 0: the canonical ACL repair.
    {
        let sock = sock.clone();
        handles.push(thread::spawn(move || {
            let mut conn = connect(&sock, "tech00");
            let session = open(
                &mut conn,
                Task {
                    kind: TaskKind::AccessControl,
                    affected: vec!["h4".to_string(), "srv1".to_string()],
                },
            );
            exec(&mut conn, session, "fw1", "show access-lists");
            exec(&mut conn, session, "fw1", "no access-list 100 line 2");
            exec(
                &mut conn,
                session,
                "fw1",
                "access-list 100 line 2 permit ip 10.1.2.0 0.0.0.255 10.2.1.0 0.0.0.255",
            );
            exec(&mut conn, session, "h4", "ping 10.2.1.10");
            finish(&mut conn, session)
        }));
    }

    // Technicians 1..=32: one unique static route each, all on fw1.
    for i in 1..=ROUTE_TECHS {
        let sock = sock.clone();
        handles.push(thread::spawn(move || {
            let mut conn = connect(&sock, &format!("tech{i:02}"));
            let host = ["h1", "h4", "h7"][i % 3];
            let session = open(
                &mut conn,
                Task {
                    kind: TaskKind::Routing,
                    affected: vec![host.to_string(), "srv1".to_string()],
                },
            );
            exec(&mut conn, session, "fw1", "show running-config");
            exec(
                &mut conn,
                session,
                "fw1",
                &format!("ip route 10.{}.0.0 255.255.255.0 10.2.1.10", 100 + i),
            );
            finish(&mut conn, session)
        }));
    }

    let mut lost = 0usize;
    let mut retried_commits = 0usize;
    let mut max_attempts = 1u32;
    for h in handles {
        let (applied, attempts) = h.join().expect("technician thread");
        if !applied {
            lost += 1;
        }
        if attempts > 1 {
            retried_commits += 1;
        }
        max_attempts = max_attempts.max(attempts);
    }
    println!(
        "{} sessions finished: {} lost, {} retried stale (worst case {} attempts)",
        ROUTE_TECHS + 1,
        lost,
        retried_commits,
        max_attempts
    );
    assert_eq!(lost, 0, "no commit may be lost");

    // Control connection: stats + audit over the same wire protocol.
    // `Stats` over the net front-end returns the fleet aggregate.
    let mut conn = connect(&sock, "control");
    let Response::Stats { snapshot } = send(&mut conn, Request::Stats) else {
        panic!("expected Stats");
    };
    println!("\n--- broker stats ---\n{snapshot}");
    assert_eq!(snapshot.sessions_opened, (ROUTE_TECHS + 1) as u64);
    assert_eq!(snapshot.commits_applied, (ROUTE_TECHS + 1) as u64);
    assert_eq!(snapshot.commits_rejected, 0);

    let Response::Audit { entries } = send(
        &mut conn,
        Request::AuditQuery {
            kind: None,
            actor: None,
        },
    ) else {
        panic!("expected Audit");
    };
    println!("audit entries: {}", entries.len());

    // Observability: the Prometheus exposition over the same wire.
    let Response::Telemetry { text } = send(&mut conn, Request::Telemetry) else {
        panic!("expected Telemetry");
    };
    println!("\n--- telemetry exposition (commit stage) ---");
    for line in text
        .lines()
        .filter(|l| l.contains("stage=\"commit\"") && !l.contains("device="))
    {
        println!("{line}");
    }
    assert!(
        text.contains("stage=\"exec\"") && text.contains("heimdall_commits_applied_total"),
        "exposition must carry per-stage series and service counters"
    );

    // Pick one applied commit's audit record and walk its trace back to
    // the full span tree — the ticket-to-commit join the paper asks for.
    let Response::Audit { entries: applied } = send(
        &mut conn,
        Request::AuditQuery {
            kind: Some(heimdall::enforcer::audit::AuditKind::ChangeApplied),
            actor: None,
        },
    ) else {
        panic!("expected Audit");
    };
    let sample = applied.first().expect("at least one applied commit");
    assert_eq!(sample.trace.len(), 16, "applied commit must carry a trace");
    let Response::Trace { spans, .. } = send(
        &mut conn,
        Request::TraceQuery {
            trace: sample.trace.clone(),
        },
    ) else {
        panic!("expected Trace");
    };
    println!(
        "\ntrace {} ({}, seq {}): {} spans",
        sample.trace,
        sample.actor,
        sample.seq,
        spans.len()
    );
    for s in &spans {
        println!(
            "  {:<16} {:>9}ns  {:?}  {}",
            s.stage.as_str(),
            s.duration_ns,
            s.status,
            s.detail
        );
    }
    assert!(
        spans
            .iter()
            .any(|s| s.stage == heimdall::telemetry::Stage::Commit),
        "trace must reach the commit stage"
    );
    conn.bye().ok();
    drop(conn);

    // The main broker saw expected contention only: any frozen dump here
    // is a real regression. CI greps for the marker below.
    let dumps = fleet.shard(0).telemetry().recorder().dumps();
    for dump in &dumps {
        println!(
            "FLIGHT-RECORDER DUMP: {:?} at {}ns, {} spans\n{}",
            dump.kind, dump.at_ns, dump.span_count, dump.spans_jsonl
        );
    }
    assert!(dumps.is_empty(), "no anomaly may fire on the healthy run");

    // Out-of-band ground truth: production healed, every route landed
    // exactly once, chain verifies.
    let healed: Network = fleet.shard(0).production();
    let fw1 = healed.device_by_name("fw1").expect("fw1");
    assert_eq!(
        fw1.config.acls["100"].entries[1].action,
        AclAction::Permit,
        "ACL repair must have survived 32 racing commits"
    );
    for i in 1..=ROUTE_TECHS {
        let prefix = format!("10.{}.0.0", 100 + i);
        let hits = fw1
            .config
            .static_routes
            .iter()
            .filter(|r| r.prefix.to_string().starts_with(&prefix))
            .count();
        assert_eq!(hits, 1, "route {prefix} must land exactly once");
    }
    let cp = converge(&healed);
    assert!(
        check_policies(&healed, &cp, fleet.shard(0).policies()).all_hold(),
        "mined policies must hold on healed production"
    );
    assert!(fleet.shard(0).verify_audit(), "audit chain must verify");

    // Flight-recorder drill, on a broker of its own: a probing session
    // hammers a destructive command until the denial-burst trigger
    // freezes the ring. Expected here — the drill wording deliberately
    // differs from the regression marker above.
    let drill_net = enterprise_network();
    let drill_cp = converge(&drill_net.net);
    let drill_policies = mine_policies(
        &drill_net.net,
        &drill_cp,
        &MinerInput::from_meta(&drill_net.meta),
    );
    let drill = Broker::new(
        drill_net.net,
        drill_policies,
        BrokerConfig {
            telemetry: TelemetryConfig {
                recorder: RecorderConfig {
                    denial_burst: 4,
                    ..RecorderConfig::default()
                },
                ..TelemetryConfig::default()
            },
            obs: ObsConfig {
                // A 1ns exec-p99 ceiling: every scrape of real work is an
                // excursion, so the burn-rate drill below fires.
                rules: vec![SloRule::ceiling("exec_p99", "stage.exec.p99_ns", 1.0)],
                ..ObsConfig::default()
            },
            ..BrokerConfig::default()
        },
    );
    let (probe, _) = drill
        .open_session(
            "probe",
            Task {
                kind: TaskKind::AccessControl,
                affected: vec!["h4".to_string(), "srv1".to_string()],
            },
        )
        .expect("open drill session");
    for _ in 0..4 {
        assert!(
            drill.exec(probe, "fw1", "write erase").is_err(),
            "destructive command must be denied"
        );
    }
    let drill_dumps = drill.telemetry().recorder().dumps();
    assert_eq!(drill_dumps.len(), 1, "denial burst must freeze one dump");
    println!(
        "\nrecorder drill: {:?} froze {} spans ({})",
        drill_dumps[0].kind, drill_dumps[0].span_count, drill_dumps[0].reason
    );

    // Observability, quiet side: in network mode the server's monitor
    // thread has been scraping the whole time (no one called
    // `scrape_once` by hand); 20 explicit passes on top still fire
    // nothing under the default SLO rules. CI greps for the `obs quiet:
    // 0 alerts` line.
    let mut quiet_fired = 0;
    for _ in 0..20 {
        quiet_fired += fleet.shard(0).scrape_once();
    }
    assert_eq!(quiet_fired, 0, "healthy run must fire no alerts");
    println!(
        "\nobs quiet: 0 alerts over 20 scrapes ({} series retained)",
        fleet.shard(0).obs_store().series_names().len()
    );
    // The history is wire-queryable at every resolution.
    let mut conn = connect(&sock, "control");
    let Response::TimeSeries { points, .. } = send(
        &mut conn,
        Request::TimeQuery {
            series: "stage.exec.p99_ns".to_string(),
            start_ns: 0,
            end_ns: u64::MAX,
            resolution: Resolution::Raw,
        },
    ) else {
        panic!("expected TimeSeries");
    };
    // At least the 20 explicit passes; the background monitor loop has
    // been adding points of its own since the server came up.
    assert!(
        points.len() >= 20,
        "scrape history must cover the explicit passes: {}",
        points.len()
    );
    println!(
        "exec p99 history: {} points, latest {}ns",
        points.len(),
        points.last().expect("nonempty").max
    );
    conn.bye().ok();
    drop(conn);

    // Excursion side, on the drill broker: real mediated work against a
    // 1ns exec-p99 ceiling. The multi-window burn fires exactly once for
    // the sustained excursion, and the alert's exemplar pivots through
    // the trace store into a critical-path report. CI greps for the
    // `obs drill: 1 alert` line.
    let (work, _) = drill
        .open_session(
            "driller",
            Task {
                kind: TaskKind::AccessControl,
                affected: vec!["h4".to_string(), "srv1".to_string()],
            },
        )
        .expect("open drill work session");
    for _ in 0..10 {
        drill
            .exec(work, "fw1", "show access-lists")
            .expect("drill show");
        drill
            .exec(work, "h4", "ping 10.2.1.10")
            .expect("drill ping");
    }
    let mut drill_fired = 0;
    for _ in 0..30 {
        drill_fired += drill.scrape_once();
    }
    assert_eq!(drill_fired, 1, "one sustained excursion, one alert");
    let alerts = drill.alerts();
    let alert = alerts.first().expect("the drill alert");
    let report = drill
        .critical_path(&alert.exemplar_trace)
        .expect("exemplar must be a canonical trace tag");
    assert_eq!(
        report.top_contributor, "exec",
        "exec-heavy exemplar must attribute to exec: {:?}",
        report.stages
    );
    println!(
        "obs drill: 1 alert ({}, burn {:.1}x/{:.1}x), exemplar {} → critical path:",
        alert.rule, alert.burn_short, alert.burn_long, alert.exemplar_trace
    );
    for s in &report.stages {
        println!(
            "  {:<16} ×{:<3} self {:>9}ns  total {:>9}ns",
            s.stage, s.count, s.self_ns, s.total_ns
        );
    }

    // Audit archival drill: the chain exports to JSON for off-box
    // archival, reloads verified, and a tampered archive is rejected at
    // reload — the hashes travel with the entries. CI greps for the
    // `audit archive:` line.
    let exported = fleet.shard(0).export_audit();
    let archive = exported.to_json();
    let reloaded = AuditLog::from_json(&archive).expect("clean archive must reload verified");
    assert_eq!(
        reloaded.head(),
        exported.head(),
        "archival must preserve the chain head"
    );
    let tampered = archive.replace("tech00", "mallory");
    assert_ne!(
        tampered, archive,
        "the drill must actually tamper something"
    );
    assert!(
        AuditLog::from_json(&tampered).is_err(),
        "a tampered archive must fail chain verification on reload"
    );
    println!(
        "audit archive: {} entries exported, reload verified, tampered copy rejected",
        reloaded.len()
    );

    // Durability drill: a broker journaling into heimdall-store loses
    // power mid-service; a fresh broker recovering from the same storage
    // holds every acknowledged commit, evicts the orphaned session on
    // the record, and the audit chain still verifies. CI greps for the
    // `durability drill:` line.
    let wal_storage = MemStorage::new();
    let genesis = enterprise_network();
    let genesis_cp = converge(&genesis.net);
    let genesis_policies = mine_policies(
        &genesis.net,
        &genesis_cp,
        &MinerInput::from_meta(&genesis.meta),
    );
    let routing_ticket = || Task {
        kind: TaskKind::Routing,
        affected: vec!["h4".to_string(), "srv1".to_string()],
    };
    let durable = Broker::open_durable(
        genesis.net.clone(),
        genesis_policies.clone(),
        BrokerConfig::default(),
        Box::new(wal_storage.clone()),
    )
    .expect("open durable broker");
    durable
        .open_session("ghost", routing_ticket())
        .expect("open orphan session");
    for i in 0..2 {
        let (s, _) = durable
            .open_session(&format!("dur{i}"), routing_ticket())
            .expect("open durable session");
        durable
            .exec(
                s,
                "fw1",
                &format!("ip route 10.{}.0.0 255.255.255.0 10.2.1.10", 200 + i),
            )
            .expect("durable exec");
        let report = durable.finish(s).expect("durable finish");
        assert!(report.applied, "durable commit {i} must land");
    }
    wal_storage.crash(); // power cut: unsynced bytes gone, memory gone
    drop(durable);
    let recovered = Broker::open_durable(
        genesis.net,
        genesis_policies,
        BrokerConfig::default(),
        Box::new(wal_storage.clone()),
    )
    .expect("recover durable broker");
    let dsnap = recovered.stats();
    assert_eq!(dsnap.commits_applied, 2, "both acked commits must survive");
    assert_eq!(dsnap.recovered_sessions_evicted, 1, "the orphan is evicted");
    assert_eq!(recovered.live_sessions(), 0);
    assert!(recovered.verify_audit(), "recovered chain must verify");
    println!(
        "durability drill: 2 acked commits recovered, 1 orphan evicted, {} records replayed, audit chain verified",
        dsnap.records_replayed
    );

    // Push-subscription drill: observability arrives, it is not polled
    // for. A tenant with a live session (standing view grant) subscribes
    // to its audit feed and sees its own chain appends as server-pushed
    // events; a tenant with no session is refused fleet-scoped topics
    // with a typed, recorded denial and zero delivered events. CI greps
    // for the `push drill:` line.
    let mut subscriber = connect(&sock, "tech01");
    let sub_session = open(
        &mut subscriber,
        Task {
            kind: TaskKind::Routing,
            affected: vec!["h4".to_string(), "srv1".to_string()],
        },
    );
    subscriber
        .subscribe(&[Topic::Audit, Topic::Metrics])
        .expect("session-holding tenant may subscribe");
    // Real mediated work → audit appends → pushed frames, no polling.
    // Plain execs stay off the audit chain; the session *commit* is what
    // appends to it, so finish the session and watch the append arrive.
    exec(
        &mut subscriber,
        sub_session,
        "fw1",
        "ip route 10.250.0.0 255.255.255.0 10.2.1.10",
    );
    let (sub_committed, _) = finish(&mut subscriber, sub_session);
    assert!(sub_committed, "subscriber drill session commits");
    let pushed_seq = loop {
        match subscriber.next_event().expect("event stream") {
            (_, ObsEvent::AuditAppend { actor, seq, .. }) => {
                assert_eq!(actor, "tech01", "audit stream is tenant-scoped");
                break seq;
            }
            (_, ObsEvent::MetricsDelta { .. }) | (_, ObsEvent::Lagged { .. }) => continue,
            (_, other) => panic!("unexpected event in drill: {other:?}"),
        }
    };
    let mut freeloader = connect(&sock, "control");
    match freeloader.subscribe(&[Topic::Slo, Topic::Net]) {
        Err(ClientError::Rejected { reason, .. }) => {
            assert_eq!(
                reason,
                RejectReason::SubscriptionDenied,
                "no live session, no fleet-scoped stream"
            );
        }
        other => panic!("expected SubscriptionDenied, got {other:?}"),
    }
    assert!(
        freeloader
            .try_next_event(std::time::Duration::from_millis(200))
            .expect("denied stream stays silent")
            .is_none(),
        "a denied subscription must deliver nothing"
    );
    println!(
        "push drill: audit append seq {} pushed to its owner; sessionless fleet subscription denied ({} recorded)",
        pushed_seq,
        server.net_stats().rejects_subscription_denied
    );
    subscriber.bye().ok();
    freeloader.bye().ok();
    drop(subscriber);
    drop(freeloader);

    // Graceful shutdown: drain in-flight work, run the journal sync
    // barrier (vacuous here — no journal), close the listener, unlink
    // the socket file. CI greps for the `net shutdown: clean` line.
    let net = server.net_stats();
    let shutdown = server.shutdown();
    assert!(shutdown.journals_synced, "sync barrier must pass");
    assert!(!sock.exists(), "socket file must be unlinked");
    println!(
        "net shutdown: clean ({} connections served, {} frames handled, {} handshakes ok)",
        shutdown.connections_served, shutdown.frames_handled, net.handshakes_ok
    );

    println!("\nall commits landed exactly once; policies hold; audit chain verified");
}
