//! The motivating incidents (§2.2), executed under both access models.
//!
//! ```text
//! cargo run --release --example malicious_technician
//! ```
//!
//! Three scenarios, each run twice — once over an RMM session with root on
//! production (the current approach), once through Heimdall:
//!
//! 1. APT10-style credential exfiltration (Figure 2);
//! 2. the Figure 6 malicious ACL edit, hidden inside a legitimate fix;
//! 3. the Figure 3 careless `write erase` on the gateway router.

use heimdall::msp::attacks::{
    careless_destruction, credential_exfiltration, malicious_acl_change, stolen_credentials,
};
use heimdall::nets::enterprise;

fn main() {
    let (net, meta, _) = enterprise();

    println!("=== scenario 0: phished technician credentials (§3) ===");
    let o = stolen_credentials(&net, &meta);
    println!(
        "RMM:      attacker controls {} devices, {} (device, action) capabilities",
        o.rmm_devices, o.rmm_capabilities
    );
    println!(
        "Heimdall: attacker sees {} twin devices, {} capabilities (the open ticket's grant)",
        o.heimdall_devices, o.heimdall_capabilities
    );
    assert!(o.heimdall_capabilities < o.rmm_capabilities / 4);
    println!();

    println!("=== scenario 1: credential exfiltration (APT10 / Figure 2) ===");
    let o = credential_exfiltration(&net, &meta);
    println!("secrets in production configs:   {}", o.secrets_total);
    println!("harvested over RMM:              {}", o.secrets_rmm);
    println!("harvested through Heimdall twin: {}", o.secrets_heimdall);
    println!("twin requests denied:            {}", o.heimdall_denials);
    assert_eq!(o.secrets_heimdall, 0);

    println!("\n=== scenario 2: malicious ACL edit (Figure 6) ===");
    let o = malicious_acl_change(&net, &meta);
    println!(
        "RMM: policies newly violated in production: {}",
        o.rmm_new_violations
    );
    println!(
        "Heimdall: command allowed at console: {} (it looks legitimate)",
        o.heimdall_command_allowed
    );
    println!(
        "Heimdall: change-set imported:        {}",
        o.heimdall_applied
    );
    println!(
        "Heimdall: rejected for policies:      {:?}",
        o.heimdall_rejected_for
    );
    assert!(!o.heimdall_applied && o.rmm_new_violations > 0);

    println!("\n=== scenario 3: careless destruction (Figure 3) ===");
    let o = careless_destruction(&net, &meta);
    println!(
        "RMM: policies violated after `write erase`: {}",
        o.rmm_violations
    );
    println!(
        "Heimdall: command blocked at monitor:        {}",
        o.heimdall_blocked
    );
    println!(
        "Heimdall: production policy violations:      {}",
        o.heimdall_violations
    );
    assert!(o.heimdall_blocked && o.heimdall_violations == 0);

    println!("\nall incidents contained by Heimdall; all succeed over RMM.");

    // Finally: what the customer's security team sees afterwards. Re-run
    // the exfiltration through a twin and review its audit feed
    // forensically — the probing pattern is flagged automatically.
    println!("\n=== forensic review of the exfiltration attempt ===");
    let mut log = heimdall::enforcer::audit::AuditLog::new();
    {
        use heimdall::msp::issues::{inject_issue, IssueKind};
        use heimdall::privilege::derive::derive_privileges;
        use heimdall::twin::session::TwinSession;
        use heimdall::twin::slice::slice_for_task;
        let mut broken = net.clone();
        let issue = inject_issue(&mut broken, &meta, IssueKind::AclDeny).expect("issue");
        let task = heimdall::privilege::derive::Task {
            kind: issue.task_kind,
            affected: issue.affected.clone(),
        };
        let twin = slice_for_task(&broken, &task);
        let spec = derive_privileges(&broken, &task);
        let mut session = TwinSession::open("apt10", twin, spec);
        for d in ["bdr1", "core1", "core2", "acc3", "h7"] {
            let _ = session.exec(d, "show running-config");
        }
        for e in session.monitor().events() {
            let verdict = if e.decision.is_allowed() {
                "[allowed]"
            } else {
                "[DENIED: privilege]"
            };
            log.append(
                heimdall::enforcer::audit::AuditKind::Command,
                &e.technician,
                &format!("{}: {} {verdict}", e.device, e.command),
            );
        }
    }
    let summary = heimdall::enforcer::forensics::review(&log);
    println!("chain intact: {}", summary.chain_intact);
    for a in &summary.anomalies {
        println!(
            "ANOMALY [{}] {}: {} (evidence: {:?})",
            a.rule, a.actor, a.detail, a.evidence
        );
    }
    assert!(!summary.clean(), "the probing pattern must be flagged");
}
