//! An interactive twin console: what an MSP technician actually sees.
//!
//! ```text
//! cargo run --release --example twin_console            # interactive
//! echo "h4 ping 10.2.1.10" | cargo run --example twin_console
//! ```
//!
//! Opens the enterprise network with the Figure 6 ACL issue injected,
//! derives least privileges for the ticket, and drops you into a mediated
//! console on the twin. Input lines are `<device> <command...>`; special
//! commands: `topology`, `audit`, `finish`, `quit`.
//!
//! Try:
//! ```text
//! h4 ping 10.2.1.10
//! fw1 show access-lists
//! fw1 no access-list 100 line 2
//! fw1 access-list 100 line 2 permit ip 10.1.2.0 0.0.0.255 10.2.1.0 0.0.0.255
//! h4 ping 10.2.1.10
//! finish
//! ```
//! ...and also try what you are *not* allowed to do:
//! `bdr1 show running-config`, `fw1 write erase`.

use heimdall::enforcer::pipeline::enforce;
use heimdall::msp::issues::{inject_issue, IssueKind};
use heimdall::nets::enterprise;
use heimdall::privilege::derive::derive_privileges;
use heimdall::twin::session::TwinSession;
use heimdall::twin::slice::slice_for_task;
use std::io::{BufRead, Write};

fn main() {
    let (net, meta, policies) = enterprise();
    let mut production = net;
    let issue = inject_issue(&mut production, &meta, IssueKind::AclDeny).expect("acl issue");
    let task = heimdall::privilege::derive::Task {
        kind: issue.task_kind,
        affected: issue.affected.clone(),
    };
    let spec = derive_privileges(&production, &task);
    let twin = slice_for_task(&production, &task);

    println!("ticket {}: {}", issue.id, issue.title);
    println!(
        "twin contains {} of {} production devices: {:?}",
        twin.included.len(),
        production.device_count(),
        twin.included
    );
    println!("type `<device> <command>`, or: topology | audit | finish | quit\n");

    let mut session = TwinSession::open("you", twin, spec.clone());
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        print!("twin> ");
        std::io::stdout().flush().ok();
        let Some(Ok(line)) = lines.next() else { break };
        let line = line.trim();
        match line {
            "" => continue,
            "quit" => {
                println!("(abandoning session; nothing reaches production)");
                return;
            }
            "topology" => {
                println!("{}", session.view().render());
                continue;
            }
            "audit" => {
                for e in session.monitor().events() {
                    println!(
                        "  [{}] {} {} -> {:?}",
                        e.seq, e.device, e.command, e.decision
                    );
                }
                continue;
            }
            "finish" => break,
            _ => {}
        }
        let Some((device, cmd)) = line.split_once(' ') else {
            println!("% usage: <device> <command>");
            continue;
        };
        match session.exec(device, cmd) {
            Ok(out) if out.is_empty() => println!("ok"),
            Ok(out) => println!("{out}"),
            Err(e) => println!("{e}"),
        }
    }

    // Hand the change-set to the enforcer.
    let (changes, monitor) = session.finish();
    println!(
        "\nsession closed: {} changes, {} commands mediated ({} denied)",
        changes.len(),
        monitor.events().len(),
        monitor.denials().len()
    );
    let (outcome, audit) = enforce("you", &production, &changes, &policies, &spec);
    println!("enforcer verdict: {:?}", outcome.report.verdict);
    if let Some(updated) = &outcome.updated_production {
        let resolved = heimdall::workflow::probe_ok(updated, &issue);
        println!("ticket symptom resolved in production: {resolved}");
    } else {
        println!("changes rejected; production untouched");
        for (summary, decision) in &outcome.report.privilege_violations {
            println!("  privilege violation: {summary} ({decision:?})");
        }
        for id in &outcome.report.differential.newly_violated {
            println!("  would violate policy: {id}");
        }
    }
    println!("audit entries: {}", audit.len());
}
