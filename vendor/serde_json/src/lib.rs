//! Offline stand-in for `serde_json`, backed by the stub `serde` crate's
//! [`Value`] model and JSON codec.

pub use serde::json::{from_str, to_string, to_string_pretty};
pub use serde::{Error, Value};

/// `serde_json::Result`, for signature compatibility.
pub type Result<T> = std::result::Result<T, Error>;

/// Parses arbitrary JSON text into a [`Value`].
pub fn from_str_value(text: &str) -> Result<Value> {
    serde::json::parse(text)
}

/// Serializes into a [`Value`] (the stand-in for `serde_json::to_value`).
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_round_trip() {
        let v: Vec<u32> = from_str("[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
    }

    #[test]
    fn error_is_displayable() {
        let e = from_str::<u32>("{").unwrap_err();
        assert!(!e.to_string().is_empty());
    }
}
