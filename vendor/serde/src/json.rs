//! JSON text codec over [`Value`](crate::Value): a recursive-descent
//! parser and compact/pretty printers. The `serde_json` stand-in re-exports
//! these under its usual names.

use crate::{Deserialize, Error, Serialize, Value};

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(to_string_value(&value.to_value()))
}

/// Serializes to pretty JSON (two-space indent, serde_json style).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let v = parse(text)?;
    T::from_value(&v)
}

/// Compact printing of an already-built [`Value`].
pub fn to_string_value(v: &Value) -> String {
    let mut out = String::new();
    write_compact(v, &mut out);
    out
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number_f64(n: f64, out: &mut String) {
    if n.is_finite() {
        // `{:?}` keeps a trailing `.0` on integral floats, like serde_json.
        out.push_str(&format!("{n:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_number_f64(*n, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let inner_pad = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&inner_pad);
                write_pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in fields.iter().enumerate() {
                out.push_str(&inner_pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        Value::Array(_) => out.push_str("[]"),
        Value::Object(_) => out.push_str("{}"),
        other => write_compact(other, out),
    }
}

/// Maximum container nesting the parser accepts, matching serde_json's
/// default. The parser recurses per level, so untrusted input (e.g. a
/// megabyte of `[`) must hit this error long before the thread's stack.
pub const MAX_DEPTH: usize = 128;

/// Parses JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error(format!(
                "unexpected character `{}` at offset {}",
                c as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn descend(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(Error(format!("recursion limit of {MAX_DEPTH} exceeded")))
        } else {
            Ok(())
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => {
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.descend()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => {
                    self.depth -= 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    _ => return Err(Error::msg("invalid escape sequence")),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(first) => {
                    // Re-decode the UTF-8 sequence starting at `first`.
                    let start = self.pos - 1;
                    let width = utf8_width(first);
                    let end = start + width;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::msg("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        let first = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&first) {
            // Surrogate pair.
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(Error::msg("unpaired surrogate"));
            }
            let second = self.hex4()?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(Error::msg("invalid low surrogate"));
            }
            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| Error::msg("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| Error::msg("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, -2, 3.5], "b": {"c": null, "d": "x\ny"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn compact_round_trips() {
        let text = r#"{"k":"v with \"quotes\" and \\","n":42,"f":1.5,"arr":[true,false,null]}"#;
        let v = parse(text).unwrap();
        let printed = to_string_value(&v);
        assert_eq!(parse(&printed).unwrap(), v);
    }

    #[test]
    fn pretty_round_trips() {
        let v = parse(r#"{"outer":{"inner":[1,2]},"empty":{},"list":[]}"#).unwrap();
        let pretty = {
            let mut out = String::new();
            super::write_pretty(&v, 0, &mut out);
            out
        };
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  "));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{nope", "[1,", "\"unterminated", "{\"a\" 1}", "tru", "1 2"] {
            assert!(parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn unicode_escapes() {
        // A='A', é='é', 😀 = surrogate pair for 😀.
        let doc = "\"\\u0041\\u00e9\\ud83d\\ude00\"";
        let v = parse(doc).unwrap();
        assert_eq!(v.as_str(), Some("A\u{e9}\u{1f600}"));
    }

    #[test]
    fn depth_at_limit_parses_but_beyond_is_rejected() {
        let nest = |n: usize| format!("{}1{}", "[".repeat(n), "]".repeat(n));
        assert!(parse(&nest(MAX_DEPTH)).is_ok());
        let err = parse(&nest(MAX_DEPTH + 1)).unwrap_err();
        assert!(err.0.contains("recursion limit"), "{err:?}");
        // Mixed nesting counts both container kinds.
        let mixed = format!("{}null{}", r#"{"k":["#.repeat(80), "]}".repeat(80));
        assert!(parse(&mixed).unwrap_err().0.contains("recursion limit"));
        // Siblings at the same level do not accumulate depth.
        let wide = format!("[{}]", vec!["[1]"; 1000].join(","));
        assert!(parse(&wide).is_ok());
    }

    #[test]
    fn hostile_deep_nesting_errors_instead_of_overflowing() {
        // ~500k unclosed '[' — the attack from an unauthenticated frame.
        // Must return an error, not blow the stack.
        let bomb = "[".repeat(500_000);
        assert!(parse(&bomb).is_err());
    }

    #[test]
    fn non_ascii_passthrough() {
        let v = parse("\"héllo wörld\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo wörld"));
    }
}
