//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the slice of serde the workspace actually uses: a
//! self-describing [`Value`] model, [`Serialize`]/[`Deserialize`] traits
//! implemented for the std types that appear in derived structs, and (via
//! the `derive` feature) `#[derive(Serialize, Deserialize)]` proc-macros
//! that map structs and enums onto the same externally-tagged JSON shape
//! real serde would produce.
//!
//! It is intentionally *not* the real serde data model: there is no
//! `Serializer`/`Deserializer` visitor machinery, just `T -> Value` and
//! `Value -> T`. The `serde_json` stand-in prints and parses [`Value`].

pub mod json;

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::net::Ipv4Addr;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (field order is preserved in output).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convert a value into the self-describing [`Value`] model.
pub trait Serialize {
    fn to_value(&self) -> Value;

    /// Whether a struct field holding this value should be omitted from
    /// the serialized object (`None` options are skipped, matching the
    /// common `skip_serializing_if = "Option::is_none"` convention).
    #[doc(hidden)]
    fn omit_as_field(&self) -> bool {
        false
    }
}

/// Reconstruct a value from the [`Value`] model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn unexpected(expected: &str, got: &Value) -> Error {
    Error(format!("expected {expected}, got {}", got.type_name()))
}

// ---------------------------------------------------------------- numbers

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::msg("integer out of range"))?,
                    Value::F64(n) if n.fract() == 0.0 => *n as i64,
                    other => return Err(unexpected("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: u64 = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) => u64::try_from(*n)
                        .map_err(|_| Error::msg("integer out of range"))?,
                    Value::F64(n) if n.fract() == 0.0 && *n >= 0.0 => *n as u64,
                    other => return Err(unexpected("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_int128 {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            /// 128-bit values within u64/i64 range use the native number
            /// encoding; wider values fall back to a decimal string (the
            /// workspace stores durations-as-nanos, which fit).
            fn to_value(&self) -> Value {
                if let Ok(n) = u64::try_from(*self) {
                    Value::U64(n)
                } else if let Ok(n) = i64::try_from(*self) {
                    Value::I64(n)
                } else {
                    Value::Str(self.to_string())
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg("integer out of range")),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg("integer out of range")),
                    Value::F64(n) if n.fract() == 0.0 => Ok(*n as $t),
                    Value::Str(s) => s
                        .parse()
                        .map_err(|_| Error::msg("invalid 128-bit integer")),
                    other => Err(unexpected("integer", other)),
                }
            }
        }
    )*};
}

impl_int128!(u128, i128);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    other => Err(unexpected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

// ------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(unexpected("bool", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| unexpected("string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| unexpected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Real serde borrows `&str` zero-copy from the input document; this
    /// stub has no borrowed path, so it leaks the (small, enum-like)
    /// strings that use it — the workspace only derives this for stable
    /// lint codes.
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| unexpected("string", v))?;
        Ok(Box::leak(s.to_string().into_boxed_str()))
    }
}

impl Serialize for Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for Ipv4Addr {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| unexpected("string", v))?;
        s.parse().map_err(|_| Error::msg("invalid IPv4 address"))
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }

    fn omit_as_field(&self) -> bool {
        self.is_none()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| unexpected("array", v))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error(format!("expected array of length {N}")))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| unexpected("array", v))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize, S: BuildHasher> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| unexpected("array", v))?;
        arr.iter().map(T::from_value).collect()
    }
}

/// Maps serialize as objects; non-string keys are encoded as their
/// compact-JSON text (the same convention serde_json applies to integer
/// keys).
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::Str(s) => s,
        other => json::to_string_value(&other),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    match K::from_value(&Value::Str(s.to_string())) {
        Ok(k) => Ok(k),
        Err(first) => {
            let reparsed = json::parse(s).map_err(|_| first)?;
            K::from_value(&reparsed)
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(unexpected("object", other)),
        }
    }
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k), v.to_value()))
            .collect();
        // Hash iteration order is arbitrary; sort for stable output.
        fields.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Object(fields)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(unexpected("object", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| unexpected("array", v))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(Error(format!(
                        "expected array of length {expected}, got {}",
                        arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// --------------------------------------------------- derive support glue

/// Helpers the `serde_derive` stand-in generates calls to. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Serialize, Value};

    /// Appends one named struct field, honoring field omission (`None`).
    pub fn put<S: Serialize + ?Sized>(obj: &mut Vec<(String, Value)>, name: &str, value: &S) {
        if !value.omit_as_field() {
            obj.push((name.to_string(), value.to_value()));
        }
    }

    /// Reads one named struct field; missing fields deserialize from
    /// `Null` so optional fields default to `None`.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
        match v {
            Value::Object(_) => match v.get(name) {
                Some(inner) => {
                    T::from_value(inner).map_err(|e| Error(format!("field `{name}`: {e}")))
                }
                None => T::from_value(&Value::Null)
                    .map_err(|_| Error(format!("missing field `{name}`"))),
            },
            other => Err(Error(format!("expected object, got {}", other.type_name()))),
        }
    }

    /// Reads one positional element of a tuple struct/variant.
    pub fn elem<T: Deserialize>(arr: &[Value], idx: usize) -> Result<T, Error> {
        let v = arr
            .get(idx)
            .ok_or_else(|| Error(format!("missing tuple element {idx}")))?;
        T::from_value(v).map_err(|e| Error(format!("element {idx}: {e}")))
    }

    /// The payload array of a tuple variant.
    pub fn tuple_payload(v: &Value, arity: usize) -> Result<&[Value], Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error(format!("expected array, got {}", v.type_name())))?;
        if arr.len() != arity {
            return Err(Error(format!(
                "expected array of length {arity}, got {}",
                arr.len()
            )));
        }
        Ok(arr)
    }

    pub fn unknown_variant(ty: &str, tag: &str) -> Error {
        Error(format!("unknown {ty} variant `{tag}`"))
    }

    pub fn bad_enum_shape(ty: &str, v: &Value) -> Error {
        Error(format!(
            "expected {ty} variant tag (string or single-key object), got {}",
            v.type_name()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for v in [
            Value::I64(-3),
            Value::U64(7),
            Value::Bool(true),
            Value::Null,
        ] {
            match &v {
                Value::I64(n) => assert_eq!(i32::from_value(&v).unwrap(), *n as i32),
                Value::U64(n) => assert_eq!(u64::from_value(&v).unwrap(), *n),
                Value::Bool(b) => assert_eq!(bool::from_value(&v).unwrap(), *b),
                Value::Null => assert_eq!(Option::<u8>::from_value(&v).unwrap(), None),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn range_checked_integers() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn map_with_non_string_keys_round_trips() {
        let mut m = BTreeMap::new();
        m.insert(3u32, "three".to_string());
        m.insert(7u32, "seven".to_string());
        let v = m.to_value();
        let back: BTreeMap<u32, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_fields_are_omitted() {
        let some = Some(5u8);
        let none: Option<u8> = None;
        assert!(!some.omit_as_field());
        assert!(none.omit_as_field());
    }

    #[test]
    fn ipv4_round_trips() {
        let ip: Ipv4Addr = "10.1.2.3".parse().unwrap();
        let v = ip.to_value();
        assert_eq!(Ipv4Addr::from_value(&v).unwrap(), ip);
    }

    #[test]
    fn arrays_round_trip() {
        let a = [1u8, 2, 3];
        let v = a.to_value();
        let back: [u8; 3] = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, a);
        assert!(<[u8; 4]>::from_value(&v).is_err());
    }
}
