//! Offline stand-in for `proptest`.
//!
//! Implements the slice of proptest this workspace uses: the [`Strategy`]
//! trait with `prop_map`/`boxed`, range and `any::<T>()` strategies,
//! tuple composition, `Just`, `prop_oneof!`, `proptest::collection::vec`,
//! `proptest::option::of`, regex-subset string strategies, and the
//! `proptest!` test macro. Cases are generated from a deterministic
//! per-test RNG (seeded from the test's module path), so failures
//! reproduce across runs. There is no shrinking: a failing case panics
//! with the values that produced it left to the assertion message.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub mod strategy {
    pub use crate::{BoxedStrategy, Just, Strategy, Union};
}

/// Deterministic split-mix style RNG driving all generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seeded(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seeds from a test name so each test gets a stable stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::seeded(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of values of one type.
///
/// Unlike real proptest there is no value tree or shrinking; `generate`
/// draws one value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Type-erased, cheaply clonable strategy (the `prop_oneof!` arm type).
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` adapter: rejection-samples, then gives up and accepts the
/// last draw (no global rejection budget in the stand-in).
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..64 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        self.inner.generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (what `prop_oneof!` builds).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

// ------------------------------------------------------------- primitives

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated corpora readable.
        (0x20u8 + rng.below(0x5f) as u8) as char
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain u64 range.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

// ----------------------------------------------------------- collections

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of(strategy)`: `Some` three draws in four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// -------------------------------------------------------- regex strategy

/// String strategies from a regex subset: literal characters, `[...]`
/// classes with ranges, and `{n}`/`{m,n}`/`?`/`+`/`*` quantifiers.
/// This covers the patterns used in the workspace's tests.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_regex(self, rng)
    }
}

fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let (choices, next) = parse_atom(&chars, i);
        i = next;
        let (lo, hi, after) = parse_quantifier(&chars, i);
        i = after;
        let span = (hi - lo + 1) as u64;
        let count = lo + rng.below(span) as usize;
        for _ in 0..count {
            if !choices.is_empty() {
                let idx = rng.below(choices.len() as u64) as usize;
                out.push(choices[idx]);
            }
        }
    }
    out
}

/// One atom: a literal char or a `[...]` class, expanded to its choices.
fn parse_atom(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    match chars[i] {
        '[' => {
            i += 1;
            let mut choices = Vec::new();
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                    for c in lo..=hi {
                        if let Some(c) = char::from_u32(c) {
                            choices.push(c);
                        }
                    }
                    i += 3;
                } else {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        i += 1;
                    }
                    choices.push(chars[i]);
                    i += 1;
                }
            }
            (choices, i + 1)
        }
        '\\' if i + 1 < chars.len() => (vec![chars[i + 1]], i + 2),
        c => (vec![c], i + 1),
    }
}

/// A quantifier after an atom: `(min, max, next_index)`.
fn parse_quantifier(chars: &[char], i: usize) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .expect("unclosed { in regex strategy");
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("regex bound"),
                    hi.trim().parse().expect("regex bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("regex bound");
                    (n, n)
                }
            };
            (lo, hi, close + 1)
        }
        Some('?') => (0, 1, i + 1),
        Some('+') => (1, 8, i + 1),
        Some('*') => (0, 8, i + 1),
        _ => (1, 1, i),
    }
}

// -------------------------------------------------------------- test glue

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// The `proptest!` block: each contained test runs `cases` deterministic
/// draws of its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@block ($cfg) $($rest)*);
    };
    (@block ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let ($($pat,)+) = ($( $crate::Strategy::generate(&($strat), &mut __rng), )+);
                // Bodies may `return Ok(())` for early exit, like real
                // proptest; wrap in a Result-returning closure.
                #[allow(unreachable_code, clippy::unused_unit, clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!("proptest case {} failed: {}", __case, __e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@block ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        ProptestConfig, TestRng,
    };
}

/// `proptest::prop` namespace alias used by some call sites.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seeded(1);
        for _ in 0..1000 {
            let v = (0u8..=32).generate(&mut rng);
            assert!(v <= 32);
            let w = (2usize..10).generate(&mut rng);
            assert!((2..10).contains(&w));
        }
    }

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::seeded(2);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9]{1,8}".generate(&mut rng);
            assert!((2..=9).contains(&s.len()), "{s}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let t = "[ -~]{0,40}".generate(&mut rng);
            assert!(t.len() <= 40);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = TestRng::seeded(3);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_strategy_len_bounds() {
        let mut rng = TestRng::seeded(4);
        let s = collection::vec(any::<u16>(), 1..40);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..40).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_works(x in 0u32..100, (a, b) in (any::<bool>(), 0u8..4)) {
            prop_assert!(x < 100);
            prop_assert!(b < 4);
            let _ = a;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<u64> = {
            let mut rng = TestRng::from_name("fixed");
            (0..5).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::from_name("fixed");
            (0..5).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
