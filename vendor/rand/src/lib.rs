//! Offline stand-in for `rand` 0.9.
//!
//! Provides the seeded-RNG surface the workspace uses:
//! `StdRng::seed_from_u64` and `Rng::random_range`. The generator is a
//! splitmix64 — not cryptographic, but deterministic per seed, which is
//! all the random-network generators need.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic 64-bit generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

pub use rngs::StdRng;

/// Seedable constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        StdRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange {
    type Output;

    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

/// Object-safe raw generation core.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;

            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing generation methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let draw = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        draw < p
    }
}

impl<T: RngCore> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(0..5usize);
            assert!(x < 5);
            let y = rng.random_range(10u32..=20);
            assert!((10..=20).contains(&y));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
