//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s. A poisoned std lock (a panic while holding it) is recovered
//! via `into_inner`, matching parking_lot's behavior of not propagating
//! poison.

use std::fmt;
use std::sync::{self, PoisonError};
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(guard, |g| {
            self.inner.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Returns true if the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let mut timed_out = false;
        take_guard(guard, |g| {
            let (g, result) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = result.timed_out();
            g
        });
        timed_out
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Moves the guard out of `*slot`, through `f`, and back — needed because
/// std's `Condvar::wait` consumes the guard while parking_lot's takes
/// `&mut`.
fn take_guard<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    /// If `f` unwinds, `*slot` holds a moved-out guard the caller would
    /// drop a second time (a double unlock — UB). There is no guard value
    /// to restore at that point, so the only sound exit is no exit.
    struct AbortOnUnwind;
    impl Drop for AbortOnUnwind {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    // SAFETY: `old` is moved out and a replacement is written back before
    // returning. Unwinding out of `f` would leave the moved-out value in
    // `*slot` to be dropped again by the caller; the armed bomb turns
    // that path into an abort instead, and is defused only after the
    // replacement is written.
    unsafe {
        let old = std::ptr::read(slot);
        let bomb = AbortOnUnwind;
        let new = f(old);
        std::ptr::write(slot, new);
        std::mem::forget(bomb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_and_rwlock_basels() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }

    #[test]
    fn locks_are_not_poisoned_by_panics() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            *started = true;
            cvar.notify_one();
        });
        let (lock, cvar) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cvar.wait(&mut started);
        }
        t.join().unwrap();
        assert!(*started);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)));
    }
}
