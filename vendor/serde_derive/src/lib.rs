//! Offline stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize`/`serde::Deserialize` impls for the stub
//! `serde` crate's simplified `T <-> Value` model. Built directly on
//! `proc_macro` (no `syn`/`quote` in this environment), so it parses the
//! item token stream by hand. Supported shapes — which cover every derived
//! type in this workspace:
//!
//! - structs with named fields (externally visible as JSON objects),
//! - tuple structs (newtypes serialize transparently, wider ones as
//!   arrays),
//! - enums with unit / tuple / struct variants (externally tagged, like
//!   real serde's default representation).
//!
//! Generics are not supported; `#[serde(...)]` attributes are accepted and
//! ignored (`Option` fields are always omitted when `None` and default to
//! `None` when missing, which subsumes the one
//! `#[serde(default, skip_serializing_if = "Option::is_none")]` use in the
//! workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    item.serialize_impl()
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    item.deserialize_impl()
        .parse()
        .expect("generated impl parses")
}

// ------------------------------------------------------------------ model

enum Fields {
    Unit,
    /// Tuple fields: only the arity matters.
    Tuple(usize),
    /// Named fields in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);
    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(peek_punct(&tokens, pos), Some('<')) {
        panic!("serde stub derive: generic type `{name}` is not supported");
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde stub derive: expected enum body, got {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    }
}

fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        *pos += 1; // `#`
        if matches!(tokens.get(*pos), Some(TokenTree::Group(_))) {
            *pos += 1; // `[...]`
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            // `pub(crate)` / `pub(super)` etc.
            if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                *pos += 1;
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde stub derive: expected identifier, got {other:?}"),
    }
}

fn peek_punct(tokens: &[TokenTree], pos: usize) -> Option<char> {
    match tokens.get(pos) {
        Some(TokenTree::Punct(p)) => Some(p.as_char()),
        _ => None,
    }
}

/// Advances past one type, tracking `<...>` nesting so commas inside
/// generic arguments don't terminate the field. Delimited groups are
/// single atomic tokens in `proc_macro`, so only angle brackets need
/// explicit depth tracking.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0usize;
    let mut prev_dash = false;
    while let Some(tok) = tokens.get(*pos) {
        match tok {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && angle_depth == 0 {
                    return;
                }
                if c == '<' {
                    angle_depth += 1;
                } else if c == '>' && !prev_dash {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
        *pos += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        match peek_punct(&tokens, pos) {
            Some(':') => pos += 1,
            other => panic!("serde stub derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&tokens, &mut pos);
        if peek_punct(&tokens, pos) == Some(',') {
            pos += 1;
        }
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut pos);
        count += 1;
        if peek_punct(&tokens, pos) == Some(',') {
            pos += 1;
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if peek_punct(&tokens, pos) == Some('=') {
            pos += 1;
            while pos < tokens.len() && peek_punct(&tokens, pos) != Some(',') {
                pos += 1;
            }
        }
        if peek_punct(&tokens, pos) == Some(',') {
            pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ------------------------------------------------------------- generation

impl Item {
    fn serialize_impl(&self) -> String {
        match self {
            Item::Struct { name, fields } => {
                let body = match fields {
                    Fields::Unit => "::serde::Value::Null".to_string(),
                    Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                            .collect();
                        format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                    }
                    Fields::Named(names) => named_to_object(names, "&self."),
                };
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                     }}"
                )
            }
            Item::Enum { name, variants } => {
                let mut arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                        )),
                        Fields::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let elems: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                            };
                            arms.push_str(&format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {payload})]),\n",
                                binders.join(", ")
                            ));
                        }
                        Fields::Named(names) => {
                            let payload = named_to_object(names, "");
                            arms.push_str(&format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {payload})]),\n",
                                names.join(", ")
                            ));
                        }
                    }
                }
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{\n{arms}}} }}\n\
                     }}"
                )
            }
        }
    }

    fn deserialize_impl(&self) -> String {
        match self {
            Item::Struct { name, fields } => {
                let body = match fields {
                    Fields::Unit => format!("{{ let _ = __v; Ok({name}) }}"),
                    Fields::Tuple(1) => {
                        format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
                    }
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::__private::elem(__arr, {i})?"))
                            .collect();
                        format!(
                            "{{ let __arr = ::serde::__private::tuple_payload(__v, {n})?;\n\
                             Ok({name}({})) }}",
                            elems.join(", ")
                        )
                    }
                    Fields::Named(names) => {
                        format!("Ok({name} {{ {} }})", named_from_object(names))
                    }
                };
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }}\n\
                     }}"
                )
            }
            Item::Enum { name, variants } => {
                let mut unit_arms = String::new();
                let mut tagged_arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                            // A unit variant may also arrive tagged with a
                            // null payload.
                            tagged_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                        }
                        Fields::Tuple(1) => tagged_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?)),\n"
                        )),
                        Fields::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::__private::elem(__arr, {i})?"))
                                .collect();
                            tagged_arms.push_str(&format!(
                                "\"{vn}\" => {{ let __arr = ::serde::__private::tuple_payload(__payload, {n})?;\n\
                                 Ok({name}::{vn}({})) }},\n",
                                elems.join(", ")
                            ));
                        }
                        Fields::Named(names) => {
                            let fields: Vec<String> = names
                                .iter()
                                .map(|f| {
                                    format!("{f}: ::serde::__private::field(__payload, \"{f}\")?")
                                })
                                .collect();
                            tagged_arms.push_str(&format!(
                                "\"{vn}\" => Ok({name}::{vn} {{ {} }}),\n",
                                fields.join(", ")
                            ));
                        }
                    }
                }
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                     match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                     {unit_arms}\
                     __tag => Err(::serde::__private::unknown_variant(\"{name}\", __tag)),\n\
                     }},\n\
                     ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                     let (__tag, __payload) = &__fields[0];\n\
                     match __tag.as_str() {{\n\
                     {tagged_arms}\
                     __tag => Err(::serde::__private::unknown_variant(\"{name}\", __tag)),\n\
                     }}\n\
                     }},\n\
                     __other => Err(::serde::__private::bad_enum_shape(\"{name}\", __other)),\n\
                     }}\n\
                     }}\n\
                     }}"
                )
            }
        }
    }
}

/// `put` calls building a `Value::Object` from named fields. `accessor` is
/// prefixed to each field name (`"&self."` for structs, `""` for
/// pattern-bound variant fields, which are already references).
fn named_to_object(names: &[String], accessor: &str) -> String {
    let mut out = String::from("{ let mut __obj: Vec<(String, ::serde::Value)> = Vec::new();\n");
    for f in names {
        out.push_str(&format!(
            "::serde::__private::put(&mut __obj, \"{f}\", {accessor}{f});\n"
        ));
    }
    out.push_str("::serde::Value::Object(__obj) }");
    out
}

fn named_from_object(names: &[String]) -> String {
    names
        .iter()
        .map(|f| format!("{f}: ::serde::__private::field(__v, \"{f}\")?"))
        .collect::<Vec<_>>()
        .join(", ")
}
