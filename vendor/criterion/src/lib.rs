//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], and the
//! `criterion_group!`/`criterion_main!` macros — measuring wall-clock
//! time with a short warmup and reporting mean/median per iteration.
//! When invoked by `cargo test` (libtest passes `--test`), each benchmark
//! body runs once so benches double as smoke tests.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    smoke_only: bool,
    /// Mean/median nanoseconds per iteration, filled by `iter`.
    result: Option<(f64, f64)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.smoke_only {
            black_box(routine());
            self.result = Some((0.0, 0.0));
            return;
        }
        // Short warmup, then timed samples.
        let warmup_deadline = Instant::now() + Duration::from_millis(50);
        while Instant::now() < warmup_deadline {
            black_box(routine());
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            samples.push(start.elapsed().as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let median = samples[samples.len() / 2];
        self.result = Some((mean, median));
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The benchmark manager.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            smoke_only: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let name = id.into_id();
        let mut b = Bencher {
            sample_size: self.sample_size,
            smoke_only: self.smoke_only,
            result: None,
        };
        f(&mut b);
        report(&name, &b);
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

fn report(name: &str, b: &Bencher) {
    match b.result {
        Some((0.0, 0.0)) => println!("bench {name}: ok (smoke)"),
        Some((mean, median)) => println!(
            "bench {name}: mean {} / median {} per iter",
            format_ns(mean),
            format_ns(median)
        ),
        None => println!("bench {name}: no measurement recorded"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let name = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            smoke_only: self.criterion.smoke_only,
            result: None,
        };
        f(&mut b);
        report(&name, &b);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let name = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            smoke_only: self.criterion.smoke_only,
            result: None,
        };
        f(&mut b, input);
        report(&name, &b);
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        c.smoke_only = true;
        let mut runs = 0;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs >= 1);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default().sample_size(2);
        c.smoke_only = true;
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 7), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }
}
