//! Cross-crate property-based tests: invariants that must hold for *any*
//! network the generators can produce, not just the two evaluation nets.

use heimdall::dataplane::{DataPlane, Flow};
use heimdall::netmodel::gen::{random_network, RandomNetConfig};
use heimdall::privilege::derive::{derive_privileges, relevant_devices, Task};
use heimdall::privilege::eval::is_allowed;
use heimdall::privilege::model::{Action, Resource};
use heimdall::routing::converge;
use heimdall::twin::slice::slice_for_task;
use heimdall::verify::checker::check_policies;
use heimdall::verify::mine::{mine_policies, MinerInput};
use proptest::prelude::*;

fn arb_cfg() -> impl Strategy<Value = (u64, RandomNetConfig)> {
    (any::<u64>(), 2usize..10, 0usize..6, 1usize..4, 1usize..4).prop_map(
        |(seed, routers, extra, lans, hosts)| {
            (
                seed,
                RandomNetConfig {
                    routers,
                    extra_links: extra,
                    lans,
                    hosts_per_lan: hosts,
                },
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn convergence_is_deterministic_on_random_nets((seed, cfg) in arb_cfg()) {
        let g = random_network(seed, cfg);
        let a = converge(&g.net);
        let b = converge(&g.net);
        for (di, _) in g.net.devices() {
            prop_assert_eq!(a.rib(di), b.rib(di));
        }
    }

    #[test]
    fn traces_always_terminate((seed, cfg) in arb_cfg()) {
        let g = random_network(seed, cfg);
        let cp = converge(&g.net);
        let dp = DataPlane::new(&g.net, &cp);
        let hosts: Vec<_> = g
            .net
            .devices()
            .filter_map(|(i, d)| d.primary_address().map(|a| (i, a)))
            .collect();
        for (si, sip) in &hosts {
            for (_, dip) in &hosts {
                let traces = dp.trace_all(*si, &Flow::probe(*sip, *dip));
                // Termination with a defined disposition on every branch.
                for t in traces {
                    prop_assert!(t.hops.len() <= 64);
                }
            }
        }
    }

    #[test]
    fn mined_policies_hold_on_their_own_snapshot((seed, cfg) in arb_cfg()) {
        let g = random_network(seed, cfg);
        let cp = converge(&g.net);
        let input = MinerInput::from_meta(&g.meta);
        let set = mine_policies(&g.net, &cp, &input);
        let rep = check_policies(&g.net, &cp, &set);
        prop_assert!(rep.all_hold(), "seed {seed}: {rep}");
    }

    #[test]
    fn derived_privileges_cover_exactly_the_relevant_set((seed, cfg) in arb_cfg()) {
        let g = random_network(seed, cfg);
        // Pick two devices deterministically from the seed.
        let names: Vec<String> = g.net.devices().map(|(_, d)| d.name.clone()).collect();
        let a = &names[(seed as usize) % names.len()];
        let b = &names[(seed as usize / 7) % names.len()];
        let task = Task::connectivity(a, b);
        let spec = derive_privileges(&g.net, &task);
        let relevant = relevant_devices(&g.net, &task);
        for (di, d) in g.net.devices() {
            let can_view = is_allowed(&spec, Action::View, &Resource::Device(d.name.clone()));
            prop_assert_eq!(
                can_view,
                relevant.contains(&di),
                "{}: view grant must equal relevance", d.name
            );
            // Destructive actions are never granted by derivation.
            prop_assert!(!is_allowed(&spec, Action::Erase, &Resource::Device(d.name.clone())));
        }
    }

    #[test]
    fn twin_slices_are_connected_when_endpoints_are((seed, cfg) in arb_cfg()) {
        let g = random_network(seed, cfg);
        let names: Vec<String> = g.net.devices().map(|(_, d)| d.name.clone()).collect();
        let a = &names[(seed as usize) % names.len()];
        let b = &names[(seed as usize / 3) % names.len()];
        if a == b {
            return Ok(());
        }
        let task = Task::connectivity(a, b);
        let twin = slice_for_task(&g.net, &task);
        // Both endpoints present, and the twin graph connects them.
        prop_assert!(twin.includes(a) && twin.includes(b));
        let ai = twin.net.idx(a).expect("included");
        let bi = twin.net.idx(b).expect("included");
        prop_assert!(
            twin.net.shortest_path(ai, bi).is_some(),
            "slice must contain a path between the ticket endpoints"
        );
    }

    #[test]
    fn scheduler_reordering_preserves_final_state((seed, cfg) in arb_cfg()) {
        // For any change-set produced by diffing two network states, the
        // dependency-aware schedule must reach exactly the same final
        // configuration as naive in-order application.
        use heimdall::netmodel::diff::diff_networks;
        let g = random_network(seed, cfg);
        let before = g.net.clone();
        // Derive an "after" by perturbing several devices.
        let mut after = g.net.clone();
        let names: Vec<String> = after.devices().map(|(_, d)| d.name.clone()).collect();
        for (i, name) in names.iter().enumerate() {
            let d = after.device_by_name_mut(name).expect("same");
            if i % 3 == 0 {
                if let Some(iface) = d.config.interfaces.first().map(|x| x.name.clone()) {
                    let f = d.config.interface_mut(&iface).expect("first");
                    f.enabled = !f.enabled;
                }
            }
            if i % 4 == 1 {
                d.config.static_routes.push(
                    heimdall::netmodel::proto::StaticRoute::new(
                        "198.18.0.0/24".parse().expect("valid"),
                        "10.255.0.1".parse().expect("valid"),
                    ),
                );
            }
            if i % 5 == 2 {
                d.config.ospf = None;
            }
        }
        let diff = diff_networks(&before, &after);
        let policies = heimdall::verify::policy::PolicySet::default();
        let planned = heimdall::enforcer::schedule(&before, &diff, &policies);
        prop_assert_eq!(planned.steps.len(), diff.len());

        let mut via_plan = before.clone();
        for step in &planned.steps {
            let d = via_plan.device_by_name_mut(step.device()).expect("exists");
            step.apply(&mut d.config).expect("applies");
        }
        let mut via_diff = before.clone();
        diff.apply_to_network(&mut via_diff).expect("applies");
        for (_, d) in via_diff.devices() {
            let p = via_plan.device_by_name(&d.name).expect("same");
            prop_assert_eq!(
                d.config.canonicalized(),
                p.config.canonicalized(),
                "{} diverged under reordering", d.name
            );
        }
    }

    #[test]
    fn sanitized_slices_never_leak((seed, cfg) in arb_cfg()) {
        let mut g = random_network(seed, cfg);
        // Plant a secret on every router.
        let routers: Vec<String> = g
            .net
            .devices()
            .filter(|(_, d)| d.kind.routes())
            .map(|(_, d)| d.name.clone())
            .collect();
        for r in &routers {
            g.net
                .device_by_name_mut(r)
                .expect("router")
                .config
                .secrets
                .enable_secret = Some(format!("planted-{seed}-{r}"));
        }
        let names: Vec<String> = g.net.devices().map(|(_, d)| d.name.clone()).collect();
        let task = Task::connectivity(&names[0], &names[names.len() - 1]);
        let twin = slice_for_task(&g.net, &task);
        for (_, d) in twin.net.devices() {
            prop_assert!(d.config.secrets.is_empty(), "{} leaked", d.name);
        }
    }
}
