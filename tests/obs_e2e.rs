//! End-to-end observability: the broker's scrape loop feeds the tiered
//! time-series store (queried over the wire at three resolutions), an
//! exec-latency excursion fires exactly one burn-rate alert whose
//! exemplar trace pivots through `TraceQuery` into a critical-path
//! report topped by the exec stage, mediated device polls surface twin
//! counters — and a poll of an unprivileged device is a recorded denial
//! that leaks nothing. A quiet run fires zero alerts.

use heimdall::netmodel::acl::AclAction;
use heimdall::netmodel::gen::enterprise_network;
use heimdall::netmodel::topology::Network;
use heimdall::obs::{Resolution, SloRule};
use heimdall::privilege::derive::{Task, TaskKind};
use heimdall::routing::converge;
use heimdall::service::{
    read_frame, write_frame, Broker, BrokerConfig, BrokerError, Request, Response, SessionService,
};
use heimdall::telemetry::TraceId;
use heimdall::verify::mine::{mine_policies, MinerInput};
use heimdall::verify::policy::PolicySet;

fn healthy_enterprise() -> (Network, PolicySet) {
    let g = enterprise_network();
    let cp = converge(&g.net);
    let policies = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
    (g.net, policies)
}

/// Enterprise production with the Figure-6 ACL break, so pings hit the
/// firewall's deny path and ACL-hit counters move.
fn broken_enterprise() -> (Network, PolicySet) {
    let (mut net, policies) = healthy_enterprise();
    net.device_by_name_mut("fw1")
        .unwrap()
        .config
        .acls
        .get_mut("100")
        .unwrap()
        .entries[1]
        .action = AclAction::Deny;
    (net, policies)
}

fn acl_ticket() -> Task {
    Task {
        kind: TaskKind::AccessControl,
        affected: vec!["h4".into(), "srv1".into()],
    }
}

#[test]
fn time_queries_serve_ten_thousand_samples_at_three_resolutions() {
    let (production, policies) = healthy_enterprise();
    let service = SessionService::new(
        Broker::new(production, policies, BrokerConfig::default()),
        2,
        8,
    );
    let store = service.broker().obs_store().clone();
    const N: u64 = 10_000;
    for i in 0..N {
        store.push("bulk.samples", i, i as f64);
    }
    let expected_sum: f64 = (0..N).map(|i| i as f64).sum();
    assert_eq!(store.totals("bulk.samples"), Some((N, expected_sum)));
    assert_eq!(store.tier_sum("bulk.samples"), Some(expected_sum));

    let mut conn = service.connect().unwrap();
    let mut query = |resolution: Resolution| {
        write_frame(
            &mut conn,
            &Request::TimeQuery {
                series: "bulk.samples".into(),
                start_ns: 0,
                end_ns: N,
                resolution,
            },
        )
        .unwrap();
        let Response::TimeSeries { points, .. } = read_frame(&mut conn).unwrap() else {
            panic!("expected TimeSeries");
        };
        points
    };

    // Raw: one-sample buckets, bounded by the raw ring, newest retained.
    let raw = query(Resolution::Raw);
    assert!(!raw.is_empty() && raw.len() <= 4096, "{}", raw.len());
    assert!(raw.iter().all(|b| b.count == 1));
    assert_eq!(raw.last().unwrap().sum, (N - 1) as f64);

    // Mid: exact 16-sample aggregates.
    let mid = query(Resolution::Mid);
    assert!(!mid.is_empty());
    assert!(mid.iter().all(|b| b.count == 16), "{:?}", mid[0]);
    assert!(mid.iter().all(|b| b.min <= b.max && b.start_ns <= b.end_ns));

    // Coarse: exact 256-sample aggregates covering the evicted history.
    let coarse = query(Resolution::Coarse);
    assert!(!coarse.is_empty());
    assert!(coarse.iter().all(|b| b.count == 256));
    // The oldest raw sample has been evicted, but its mass survives in
    // the coarse tier: the first coarse bucket starts at t=0.
    assert!(raw.first().unwrap().start_ns > 0);
    assert_eq!(coarse.first().unwrap().start_ns, 0);

    // Wire-level validation: non-canonical series and inverted ranges
    // are BadRequest, unknown-but-canonical series are empty results.
    write_frame(
        &mut conn,
        &Request::TimeQuery {
            series: "Not Canonical!".into(),
            start_ns: 0,
            end_ns: 1,
            resolution: Resolution::Raw,
        },
    )
    .unwrap();
    assert!(matches!(
        read_frame::<_, Response>(&mut conn).unwrap(),
        Response::Error { .. }
    ));
    write_frame(
        &mut conn,
        &Request::TimeQuery {
            series: "bulk.samples".into(),
            start_ns: 9,
            end_ns: 3,
            resolution: Resolution::Raw,
        },
    )
    .unwrap();
    assert!(matches!(
        read_frame::<_, Response>(&mut conn).unwrap(),
        Response::Error { .. }
    ));
    write_frame(
        &mut conn,
        &Request::TimeQuery {
            series: "no.such.series".into(),
            start_ns: 0,
            end_ns: u64::MAX,
            resolution: Resolution::Coarse,
        },
    )
    .unwrap();
    let Response::TimeSeries { points, .. } = read_frame(&mut conn).unwrap() else {
        panic!("expected empty TimeSeries");
    };
    assert!(points.is_empty());
}

#[test]
fn exec_excursion_fires_one_alert_whose_exemplar_tops_with_exec() {
    let (production, policies) = broken_enterprise();
    let mut config = BrokerConfig::default();
    // A 1ns exec-p99 ceiling: every mediated command is an excursion, so
    // the windows burn as soon as they are warm.
    config.obs.rules = vec![SloRule::ceiling("exec_p99", "stage.exec.p99_ns", 1.0)];
    let broker = Broker::new(production, policies, config);

    let (id, _) = broker.open_session("alice", acl_ticket()).unwrap();
    // Plenty of mediated work so the exec stage dominates the trace.
    for _ in 0..20 {
        broker.exec(id, "fw1", "show access-lists").unwrap();
        broker.exec(id, "h4", "ping 10.2.1.10").unwrap();
    }

    let mut fired_total = 0;
    for _ in 0..30 {
        fired_total += broker.scrape_once();
    }
    assert_eq!(fired_total, 1, "one sustained excursion, one alert");
    let alerts = broker.alerts();
    assert_eq!(alerts.len(), 1);
    let alert = &alerts[0];
    assert_eq!(alert.rule, "exec_p99");
    assert_eq!(alert.series, "stage.exec.p99_ns");
    assert!(alert.burn_short >= 1.0 && alert.burn_long >= 1.0);

    // The exemplar is a canonical trace tag that resolves to a span tree.
    assert!(
        TraceId::parse(&alert.exemplar_trace).is_some(),
        "bad exemplar {:?}",
        alert.exemplar_trace
    );
    let spans = broker.trace_query(&alert.exemplar_trace).unwrap();
    assert!(!spans.is_empty(), "exemplar must resolve to retained spans");

    // Pivot over the wire: AlertQuery → CriticalPath on the exemplar.
    let Response::Alerts {
        alerts: wire_alerts,
    } = broker.handle(Request::AlertQuery)
    else {
        panic!("expected Alerts");
    };
    assert_eq!(wire_alerts.len(), 1);
    let Response::CriticalPath { report } = broker.handle(Request::CriticalPath {
        trace: wire_alerts[0].exemplar_trace.clone(),
    }) else {
        panic!("expected CriticalPath");
    };
    assert_eq!(
        report.top_contributor, "exec",
        "exec-heavy trace must attribute to exec: {:?}",
        report.stages
    );
    assert!(report.total_ns > 0);
    let exec = report.stages.iter().find(|s| s.stage == "exec").unwrap();
    assert_eq!(exec.count, 40, "all mediated lines attributed");

    // Malformed pivots are rejected, unknown-but-canonical traces are
    // empty reports — never errors that would break a dashboard.
    assert!(matches!(
        broker.handle(Request::CriticalPath {
            trace: "not-hex".into()
        }),
        Response::Error { .. }
    ));
    let Response::CriticalPath { report } = broker.handle(Request::CriticalPath {
        trace: "00000000000000aa".into(),
    }) else {
        panic!("expected CriticalPath");
    };
    assert!(report.stages.is_empty());
}

#[test]
fn mediated_polls_feed_series_and_denied_polls_leak_nothing() {
    let (production, policies) = broken_enterprise();
    let broker = Broker::new(production, policies, BrokerConfig::default());
    let (id, devices) = broker.open_session("alice", acl_ticket()).unwrap();
    assert!(devices.contains(&"fw1".to_string()));
    assert!(!devices.contains(&"bdr1".to_string()), "{devices:?}");

    // A denied ping moves fw1's ACL-hit counter inside the twin…
    let pong = broker.exec(id, "h4", "ping 10.2.1.10").unwrap();
    assert!(pong.contains("denied") || pong.contains("failed"), "{pong}");
    broker.scrape_once();

    // …and the mediated scrape surfaced it as a device series.
    let store = broker.obs_store();
    let fw1_hits = store.tail("device.fw1.acl_hits", 1);
    assert_eq!(fw1_hits.len(), 1);
    assert!(fw1_hits[0].1 >= 1.0, "acl hit not scraped: {fw1_hits:?}");
    assert!(!store.tail("device.fw1.if_up", 1).is_empty());

    // The border router is outside alice's privilege: polling it is a
    // recorded denial and writes nothing.
    let denials_before = broker.stats().denials;
    let err = broker.poll_device_counters(id, "bdr1").unwrap_err();
    assert!(matches!(err, BrokerError::PermissionDenied(_)));
    assert_eq!(broker.stats().denials, denials_before + 1);
    assert!(
        !store
            .series_names()
            .iter()
            .any(|n| n.starts_with("device.bdr1")),
        "denied poll must not leak series"
    );

    // The in-twin scrape itself stayed denial-free: every sliced device
    // is viewable by construction.
    assert_eq!(denials_before, 0);
}

#[test]
fn quiet_run_fires_zero_alerts_under_default_rules() {
    let (production, policies) = healthy_enterprise();
    let broker = Broker::new(production, policies, BrokerConfig::default());
    let (id, _) = broker.open_session("bob", acl_ticket()).unwrap();
    broker.exec(id, "fw1", "show access-lists").unwrap();
    broker.exec(id, "h4", "ping 10.2.1.10").unwrap();
    for _ in 0..40 {
        assert_eq!(broker.scrape_once(), 0);
    }
    assert!(broker.alerts().is_empty(), "{:?}", broker.alerts());
    assert_eq!(broker.stats().denials, 0);
    // The history is there for dashboards even though nothing fired.
    assert!(broker.obs_store().contains("stage.exec.p99_ns"));
    assert!(broker.obs_store().contains("service.denials_total"));
    assert!(broker.obs_store().contains("enforcer.verify_total"));
}
