//! End-to-end integration: every issue class on both evaluation networks,
//! driven through the complete Heimdall workflow, must leave production
//! healed and policy-clean.

use heimdall::msp::issues::{inject_issue, IssueKind};
use heimdall::nets::{enterprise, university};
use heimdall::routing::converge;
use heimdall::verify::checker::check_policies;
use heimdall::workflow::{probe_ok, run_current_approach, run_heimdall};

const ALL_KINDS: [IssueKind; 4] = [
    IssueKind::Vlan,
    IssueKind::Ospf,
    IssueKind::Isp,
    IssueKind::AclDeny,
];

#[test]
fn heimdall_heals_every_enterprise_issue_and_restores_policy() {
    let (net, meta, policies) = enterprise();
    for kind in ALL_KINDS {
        let mut broken = net.clone();
        let issue = inject_issue(&mut broken, &meta, kind).expect("enterprise issue");
        let run = run_heimdall(&broken, &issue, &policies);
        assert!(
            run.resolved,
            "{kind:?} not resolved: {:?}",
            run.outcome.report
        );

        let updated = run.outcome.updated_production.expect("applied");
        let cp = converge(&updated);
        let rep = check_policies(&updated, &cp, &policies);
        assert!(rep.all_hold(), "{kind:?} left violations: {rep}");
    }
}

#[test]
fn heimdall_heals_university_issues() {
    let (net, meta, policies) = university();
    for kind in [IssueKind::Ospf, IssueKind::Isp, IssueKind::AclDeny] {
        let mut broken = net.clone();
        let issue = inject_issue(&mut broken, &meta, kind).expect("university issue");
        assert!(!probe_ok(&broken, &issue), "{kind:?} starts broken");
        let run = run_heimdall(&broken, &issue, &policies);
        assert!(
            run.resolved,
            "{kind:?} not resolved: {:?}",
            run.outcome.report
        );
        // Twin never exposed the whole campus.
        assert!(
            run.twin_devices < net.device_count() / 2,
            "{kind:?}: twin too large ({} devices)",
            run.twin_devices
        );
    }
}

#[test]
fn both_approaches_agree_on_the_fix_result() {
    let (net, meta, policies) = enterprise();
    for kind in ALL_KINDS {
        let mut broken = net.clone();
        let issue = inject_issue(&mut broken, &meta, kind).expect("issue");
        let current = run_current_approach(&broken, &issue);
        let heimdall = run_heimdall(&broken, &issue, &policies);
        assert!(current.resolved && heimdall.resolved, "{kind:?}");
        // The resulting production configurations are semantically equal.
        let updated = heimdall.outcome.updated_production.expect("applied");
        for (_, d) in updated.devices() {
            let rmm_dev = current
                .production
                .device_by_name(&d.name)
                .expect("same devices");
            assert_eq!(
                d.config.canonicalized(),
                rmm_dev.config.canonicalized(),
                "{kind:?}: {} configs diverge",
                d.name
            );
        }
    }
}

#[test]
fn workflow_is_idempotent_on_healthy_networks() {
    // Submitting an empty change-set against healthy production is a no-op
    // that is still fully audited.
    let (net, meta, policies) = enterprise();
    let mut broken = net.clone();
    let issue = inject_issue(&mut broken, &meta, IssueKind::AclDeny).expect("issue");
    let run = run_heimdall(&broken, &issue, &policies);
    let healed = run.outcome.updated_production.expect("applied");

    // Re-run the same ticket against the healed network: the technician's
    // commands now find nothing to fix... but the prepared list *does*
    // re-apply the same ACL line, so the diff must be empty.
    let run2 = run_heimdall(&healed, &issue, &policies);
    assert_eq!(run2.changes, 0, "no-op re-run produces no changes");
    assert!(
        run2.outcome.applied(),
        "empty change-set is trivially accepted"
    );
}

#[test]
fn snapshot_round_trip_preserves_behavior() {
    // A network written as a Batfish-style snapshot directory and read
    // back must converge to identical RIBs and hold the same policies.
    let (net, _, policies) = enterprise();
    let dir = std::env::temp_dir().join(format!("heimdall-e2e-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    heimdall::netmodel::snapshot::save_snapshot(&net, &dir).expect("save");
    let back = heimdall::netmodel::snapshot::load_snapshot(&dir).expect("load");
    let cp_a = converge(&net);
    let cp_b = converge(&back);
    for (name, _) in net
        .devices()
        .map(|(i, d)| (d.name.clone(), i))
        .collect::<Vec<_>>()
    {
        let ia = net.idx(&name).expect("orig");
        let ib = back.idx(&name).expect("loaded");
        assert_eq!(cp_a.rib(ia), cp_b.rib(ib), "{name} RIBs diverge");
    }
    let rep = check_policies(&back, &cp_b, &policies);
    assert!(rep.all_hold(), "{rep}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sequential_tickets_share_one_production_history() {
    // Two tickets in sequence on the same production network: the second
    // starts from the first's healed state; both engagements audit clean.
    let (net, meta, policies) = enterprise();
    let mut production = net;

    let issue1 = inject_issue(&mut production, &meta, IssueKind::AclDeny).expect("first");
    let run1 = run_heimdall(&production, &issue1, &policies);
    assert!(run1.resolved);
    let mut production = run1.outcome.updated_production.expect("applied");

    let issue2 = inject_issue(&mut production, &meta, IssueKind::Ospf).expect("second");
    assert!(!probe_ok(&production, &issue2));
    // The first fix must have survived into the second broken state.
    assert!(probe_ok(&production, &issue1), "first fix persisted");
    let run2 = run_heimdall(&production, &issue2, &policies);
    assert!(run2.resolved);
    let healed = run2.outcome.updated_production.expect("applied");
    let cp = converge(&healed);
    assert!(check_policies(&healed, &cp, &policies).all_hold());
}

#[test]
fn racing_technicians_are_serialized_by_the_base_check() {
    use heimdall::enforcer::concurrency::base_fingerprint;
    use heimdall::enforcer::enclave::Platform;
    use heimdall::enforcer::pipeline::EnforcerPipeline;
    use heimdall::enforcer::Verdict;
    use heimdall::privilege::derive::derive_privileges;
    use heimdall::twin::session::TwinSession;
    use heimdall::twin::slice::slice_for_task;

    let (net, meta, policies) = enterprise();
    let mut production = net;
    let issue = inject_issue(&mut production, &meta, IssueKind::AclDeny).expect("issue");
    let task = issue_task(&issue);
    let spec = derive_privileges(&production, &task);

    // Both alice and bob open twins from the same production state and
    // both edit fw1's ACL 100.
    let run_session = |name: &str, line: usize| {
        let twin = slice_for_task(&production, &task);
        let mut s = TwinSession::open(name, twin, spec.clone());
        s.exec("fw1", &format!("no access-list 100 line {line}"))
            .expect("in privilege");
        s.exec(
            "fw1",
            &format!("access-list 100 line {line} permit ip 10.1.2.0 0.0.0.255 10.2.1.0 0.0.0.255"),
        )
        .expect("in privilege");
        s.finish().0
    };
    let diff_alice = run_session("alice", 2);
    let diff_bob = run_session("bob", 2);
    let base = base_fingerprint(&production, &diff_alice);

    let platform = Platform::new("host");
    let mut enforcer = EnforcerPipeline::launch(&platform);

    // Alice lands first.
    let a = enforcer.process_checked("alice", &production, &diff_alice, &base, &policies, &spec);
    assert!(a.applied(), "{:?}", a.report);
    let production2 = a.updated_production.expect("applied");

    // Bob's work order is now stale: fw1 changed under him.
    let b = enforcer.process_checked("bob", &production2, &diff_bob, &base, &policies, &spec);
    assert_eq!(b.report.verdict, Verdict::RejectedStale);
    assert!(!b.applied());
    assert!(enforcer
        .audit()
        .entries
        .iter()
        .any(|e| e.detail.contains("RejectedStale")));

    // Bob re-opens from current production; his (now no-op) change-set
    // imports cleanly against the fresh base.
    let twin = slice_for_task(&production2, &task);
    let mut s = TwinSession::open("bob", twin, spec.clone());
    let _ = s.exec("h4", "ping 10.2.1.10").expect("view");
    let (diff_bob2, _) = s.finish();
    let base2 = base_fingerprint(&production2, &diff_bob2);
    let b2 = enforcer.process_checked("bob", &production2, &diff_bob2, &base2, &policies, &spec);
    assert!(b2.applied());
}

fn issue_task(issue: &heimdall::msp::issues::Issue) -> heimdall::privilege::derive::Task {
    heimdall::privilege::derive::Task {
        kind: issue.task_kind,
        affected: issue.affected.clone(),
    }
}

#[test]
fn audit_chain_covers_the_whole_engagement() {
    let (net, meta, policies) = enterprise();
    let mut broken = net.clone();
    let issue = inject_issue(&mut broken, &meta, IssueKind::Ospf).expect("issue");
    let run = run_heimdall(&broken, &issue, &policies);
    let audit = &run.audit;
    assert!(audit.verify_chain().is_ok());
    // Submission, verdict, and one applied change, at minimum.
    assert!(audit.len() >= 3, "{audit:?}");
    let details: Vec<&str> = audit.entries.iter().map(|e| e.detail.as_str()).collect();
    assert!(details.iter().any(|d| d.contains("change-set submitted")));
    assert!(details.iter().any(|d| d.contains("verdict=Accepted")));
}
