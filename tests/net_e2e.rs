//! End-to-end drills for the heimdall-net front-end: real TCP sockets,
//! authenticated handshakes, multiplexed sessions against a sharded
//! broker fleet, and a typed rejection for every way a client can
//! misbehave — bad proofs, replayed nonces, stolen sessions, stalled
//! readers.

use heimdall::net::{
    BoundAcceptor, BrokerFleet, ClientError, NetClient, NetConfig, NetServer, RejectReason,
    TenantKeys,
};
use heimdall::net::{ClientFrame, ServerFrame};
use heimdall::netmodel::gen::enterprise_network;
use heimdall::netmodel::topology::Network;
use heimdall::privilege::derive::{Task, TaskKind};
use heimdall::routing::converge;
use heimdall::service::proto::{read_frame, write_frame, Request, Response};
use heimdall::service::BrokerConfig;
use heimdall::verify::mine::{mine_policies, MinerInput};
use heimdall::verify::policy::PolicySet;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn healthy_enterprise() -> (Network, PolicySet) {
    let g = enterprise_network();
    let cp = converge(&g.net);
    let policies = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
    (g.net, policies)
}

fn key_for(tenant: &str) -> Vec<u8> {
    format!("shared-key-{tenant}").into_bytes()
}

fn ticket() -> Task {
    Task {
        kind: TaskKind::Routing,
        affected: vec!["h4".into(), "srv1".into()],
    }
}

/// A TCP server over an `n`-shard fleet, with keys for tech00..tech31.
fn start_server(shards: usize, config: NetConfig) -> (NetServer, SocketAddr) {
    let (production, policies) = healthy_enterprise();
    let fleet = Arc::new(BrokerFleet::from_template(
        &production,
        &policies,
        &BrokerConfig::default(),
        shards,
    ));
    let tenants: Vec<String> = (0..32).map(|i| format!("tech{i:02}")).collect();
    let mut keys = TenantKeys::new();
    for t in &tenants {
        keys.insert(t, &key_for(t));
    }
    let (acceptor, addr) = BoundAcceptor::tcp("127.0.0.1:0").expect("bind tcp");
    let server = NetServer::start(fleet, keys, config, vec![acceptor]);
    (server, addr)
}

/// Handshake rejects are counted on the server's reader thread *after*
/// the reject frame is written, so a client can observe the rejection
/// a moment before the counter moves — poll instead of asserting raw.
fn wait_counter(read: impl Fn() -> u64, want: u64, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while read() < want {
        assert!(Instant::now() < deadline, "{what} never reached {want}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn connect(addr: SocketAddr, tenant: &str) -> NetClient {
    NetClient::connect_tcp(&addr.to_string(), tenant, &key_for(tenant)).expect("connect")
}

/// Open (inheriting the connection identity), land one route, finish.
fn session_roundtrip(client: &mut NetClient, route_octet: u8) {
    let opened = client
        .call(Request::OpenSession {
            technician: String::new(),
            ticket: ticket(),
        })
        .expect("open");
    let session = match opened {
        Response::SessionOpened { session, .. } => session,
        other => panic!("expected SessionOpened, got {other:?}"),
    };
    let exec = client
        .call(Request::Exec {
            session,
            device: "fw1".into(),
            line: format!("ip route 10.{route_octet}.0.0 255.255.255.0 10.2.1.10"),
        })
        .expect("exec");
    assert!(matches!(exec, Response::ExecOutput { .. }), "{exec:?}");
    let finished = client.call(Request::Finish { session }).expect("finish");
    match finished {
        Response::Finished { applied, .. } => assert!(applied, "commit must land"),
        other => panic!("expected Finished, got {other:?}"),
    }
}

#[test]
fn lifecycle_over_tcp_across_shards() {
    let (server, addr) = start_server(4, NetConfig::default());
    // Find tenants homed on different shards so the fleet aggregation
    // provably crosses a shard boundary.
    let mut clients: Vec<NetClient> = Vec::new();
    let mut shards_seen = std::collections::HashSet::new();
    for i in 0..32 {
        let c = connect(addr, &format!("tech{i:02}"));
        shards_seen.insert(c.shard());
        clients.push(c);
        if shards_seen.len() >= 2 && clients.len() >= 4 {
            break;
        }
    }
    assert!(
        shards_seen.len() >= 2,
        "32 tenants on 4 shards must span >= 2 shards"
    );
    let n = clients.len() as u64;
    for (i, c) in clients.iter_mut().enumerate() {
        session_roundtrip(c, 100 + i as u8);
    }
    // The Stats request answers through the exchange API: the aggregate
    // must count sessions from every shard, not just the caller's home.
    let stats = clients[0].call(Request::Stats).expect("stats");
    match stats {
        Response::Stats { snapshot } => {
            assert_eq!(snapshot.sessions_opened, n, "fleet-wide aggregate");
            assert_eq!(snapshot.commits_applied, n);
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    for mut c in clients {
        let _ = c.bye();
    }
    let report = server.shutdown();
    assert!(report.journals_synced);
    assert!(
        report.frames_handled > 3 * n,
        "open+exec+finish per client plus the stats poll"
    );
}

#[test]
fn channels_interleave_on_one_connection() {
    let (server, addr) = start_server(1, NetConfig::default());
    let mut client = connect(addr, "tech00");
    // Two logical sessions on one socket, replies claimed out of order.
    let ch_a = client.open_channel();
    let ch_b = client.open_channel();
    client
        .send_on(
            ch_a,
            Request::OpenSession {
                technician: String::new(),
                ticket: ticket(),
            },
        )
        .unwrap();
    client
        .send_on(
            ch_b,
            Request::OpenSession {
                technician: String::new(),
                ticket: ticket(),
            },
        )
        .unwrap();
    // Claim B first: A's reply must be buffered, not lost.
    let opened_b = client.recv_on(ch_b).unwrap();
    let opened_a = client.recv_on(ch_a).unwrap();
    let (sa, sb) = match (opened_a, opened_b) {
        (
            Response::SessionOpened { session: sa, .. },
            Response::SessionOpened { session: sb, .. },
        ) => (sa, sb),
        other => panic!("expected two SessionOpened, got {other:?}"),
    };
    assert_ne!(sa, sb, "distinct sessions per channel");
    for s in [sa, sb] {
        let done = client.call(Request::Finish { session: s }).unwrap();
        assert!(matches!(done, Response::Finished { .. }), "{done:?}");
    }
    let stats = server.net_stats();
    assert!(stats.batches >= 1, "executor must have batched work");
    assert!(stats.batched_frames >= stats.batches);
    server.shutdown();
}

#[test]
fn bad_hmac_is_typed_rejection() {
    let (server, addr) = start_server(1, NetConfig::default());
    let stream = TcpStream::connect(addr).unwrap();
    let err = NetClient::from_stream(Box::new(stream), "tech00", b"wrong-key").unwrap_err();
    match err {
        ClientError::Rejected { reason, .. } => assert_eq!(reason, RejectReason::BadMac),
        other => panic!("expected BadMac rejection, got {other:?}"),
    }
    wait_counter(|| server.net_stats().rejects_bad_mac, 1, "bad-mac counter");
    assert_eq!(server.net_stats().handshakes_ok, 0);
    server.shutdown();
}

#[test]
fn unknown_tenant_is_typed_rejection() {
    let (server, addr) = start_server(1, NetConfig::default());
    let stream = TcpStream::connect(addr).unwrap();
    let err = NetClient::from_stream(Box::new(stream), "nobody", b"any").unwrap_err();
    match err {
        ClientError::Rejected { reason, .. } => {
            assert_eq!(reason, RejectReason::UnknownTenant)
        }
        other => panic!("expected UnknownTenant rejection, got {other:?}"),
    }
    wait_counter(
        || server.net_stats().rejects_unknown_tenant,
        1,
        "unknown-tenant counter",
    );
    server.shutdown();
}

#[test]
fn replayed_handshake_nonce_is_typed_rejection() {
    let (server, addr) = start_server(1, NetConfig::default());
    let nonce = "nonce-under-replay";
    let first = NetClient::from_stream_with_nonce(
        Box::new(TcpStream::connect(addr).unwrap()),
        "tech00",
        &key_for("tech00"),
        nonce,
    );
    assert!(first.is_ok(), "first use of the nonce authenticates");
    let replay = NetClient::from_stream_with_nonce(
        Box::new(TcpStream::connect(addr).unwrap()),
        "tech00",
        &key_for("tech00"),
        nonce,
    );
    match replay.unwrap_err() {
        ClientError::Rejected { reason, .. } => {
            assert_eq!(reason, RejectReason::ReplayedNonce)
        }
        other => panic!("expected ReplayedNonce rejection, got {other:?}"),
    }
    wait_counter(
        || server.net_stats().rejects_replayed_nonce,
        1,
        "replayed-nonce counter",
    );
    server.shutdown();
}

#[test]
fn frames_before_handshake_are_unauthenticated() {
    let (server, addr) = start_server(1, NetConfig::default());
    let mut stream = TcpStream::connect(addr).unwrap();
    // Skip the handshake entirely and try to use the broker.
    write_frame(
        &mut stream,
        &ClientFrame::Mux {
            channel: 1,
            request: Request::Stats,
        },
    )
    .unwrap();
    let reply: ServerFrame = read_frame(&mut stream).unwrap();
    match reply {
        ServerFrame::Reject { reason, .. } => {
            assert_eq!(reason, RejectReason::NotAuthenticated)
        }
        other => panic!("expected NotAuthenticated reject, got {other:?}"),
    }
    wait_counter(
        || server.net_stats().rejects_unauthenticated,
        1,
        "unauthenticated counter",
    );
    server.shutdown();
}

#[test]
fn opening_as_someone_else_is_identity_mismatch() {
    let (server, addr) = start_server(1, NetConfig::default());
    let mut client = connect(addr, "tech00");
    let err = client
        .call(Request::OpenSession {
            technician: "tech07".into(), // registered, but not *us*
            ticket: ticket(),
        })
        .unwrap_err();
    match err {
        ClientError::Rejected { reason, .. } => {
            assert_eq!(reason, RejectReason::IdentityMismatch)
        }
        other => panic!("expected IdentityMismatch, got {other:?}"),
    }
    assert_eq!(server.net_stats().rejects_identity_mismatch, 1);
    server.shutdown();
}

#[test]
fn foreign_session_access_is_typed_rejection() {
    let (server, addr) = start_server(1, NetConfig::default());
    let mut owner = connect(addr, "tech00");
    let opened = owner
        .call(Request::OpenSession {
            technician: String::new(),
            ticket: ticket(),
        })
        .unwrap();
    let session = match opened {
        Response::SessionOpened { session, .. } => session,
        other => panic!("{other:?}"),
    };
    // Same tenant, *different connection*: session handles are
    // connection-scoped capabilities, so even the same identity cannot
    // reach across.
    let mut thief = connect(addr, "tech00");
    let err = thief
        .call(Request::Exec {
            session,
            device: "fw1".into(),
            line: "show access-lists".into(),
        })
        .unwrap_err();
    match err {
        ClientError::Rejected { reason, .. } => {
            assert_eq!(reason, RejectReason::ForeignSession)
        }
        other => panic!("expected ForeignSession, got {other:?}"),
    }
    assert_eq!(server.net_stats().rejects_foreign_session, 1);
    // The owner is unaffected.
    let done = owner.call(Request::Finish { session }).unwrap();
    assert!(matches!(done, Response::Finished { .. }), "{done:?}");
    server.shutdown();
}

#[test]
fn stalled_reader_is_evicted_as_slow_consumer() {
    let config = NetConfig {
        write_queue_depth: 1,
        ..NetConfig::default()
    };
    let (server, addr) = start_server(1, config);
    let mut client = connect(addr, "tech00");
    // Pipeline a flood of large replies and never read: the kernel
    // buffers fill, the writer blocks, the depth-1 reply queue
    // overflows, and the connection is evicted — the server never
    // blocks on our stall.
    let mut channel = 1;
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if server.net_stats().slow_consumer_evictions >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "eviction did not trigger: {:?}",
            server.net_stats()
        );
        if client.send_on(channel, Request::Telemetry).is_err() {
            // Socket already slammed shut by the eviction.
            break;
        }
        channel += 1;
        std::thread::sleep(Duration::from_millis(1));
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.net_stats().slow_consumer_evictions < 1 {
        assert!(Instant::now() < deadline, "eviction counter never moved");
        std::thread::sleep(Duration::from_millis(5));
    }
    // A fresh connection still works: the eviction was surgical.
    let mut healthy = connect(addr, "tech01");
    session_roundtrip(&mut healthy, 120);
    server.shutdown();
}
