//! Property tests for the heimdall-service wire protocol: every frame
//! type round-trips through the length-prefixed JSON codec byte-for-value,
//! truncated streams are always detected, and oversized length prefixes
//! are always rejected before allocation.

use heimdall::analyze::{AnalysisReport, Finding, Severity};
use heimdall::enforcer::audit::AuditKind;
use heimdall::enforcer::verifier::Verdict;
use heimdall::obs::{Alert, Bucket, CriticalPathReport, Resolution, StageCost};
use heimdall::privilege::derive::{Task, TaskKind};
use heimdall::service::stats::StatsSnapshot;
use heimdall::service::{
    read_frame, write_frame, AuditEntryView, Broker, BrokerConfig, ErrorKind, FrameError, Request,
    Response, SessionId, MAX_FRAME,
};
use heimdall::telemetry::{Span, SpanId, SpanStatus, Stage, TraceId};
use proptest::prelude::*;
use std::sync::OnceLock;

// ------------------------------------------------------------ strategies

fn name_s() -> BoxedStrategy<String> {
    "[a-z][a-z0-9_]{0,11}".boxed()
}

fn line_s() -> BoxedStrategy<String> {
    // Printable ASCII incl. spaces and JSON-hostile quotes/backslashes.
    "[ -~]{0,48}".boxed()
}

fn task_kind_s() -> BoxedStrategy<TaskKind> {
    prop_oneof![
        Just(TaskKind::Connectivity),
        Just(TaskKind::Routing),
        Just(TaskKind::AccessControl),
        Just(TaskKind::Vlan),
        Just(TaskKind::IspChange),
        Just(TaskKind::Monitoring),
    ]
    .boxed()
}

fn task_s() -> BoxedStrategy<Task> {
    (task_kind_s(), collection::vec(name_s(), 0..4))
        .prop_map(|(kind, affected)| Task { kind, affected })
        .boxed()
}

fn audit_kind_s() -> BoxedStrategy<AuditKind> {
    prop_oneof![
        Just(AuditKind::Command),
        Just(AuditKind::Escalation),
        Just(AuditKind::Verification),
        Just(AuditKind::ChangeApplied),
        Just(AuditKind::Session),
    ]
    .boxed()
}

fn verdict_s() -> BoxedStrategy<Verdict> {
    prop_oneof![
        Just(Verdict::Accepted),
        Just(Verdict::RejectedPrivilege),
        Just(Verdict::RejectedPolicy),
        Just(Verdict::RejectedLint),
        Just(Verdict::RejectedStale),
    ]
    .boxed()
}

fn error_kind_s() -> BoxedStrategy<ErrorKind> {
    prop_oneof![
        Just(ErrorKind::SessionNotFound),
        Just(ErrorKind::PermissionDenied),
        Just(ErrorKind::BadCommand),
        Just(ErrorKind::RateLimited),
        Just(ErrorKind::Busy),
        Just(ErrorKind::BadRequest),
    ]
    .boxed()
}

/// Every `Request` variant.
fn request_s() -> BoxedStrategy<Request> {
    prop_oneof![
        (name_s(), task_s())
            .prop_map(|(technician, ticket)| Request::OpenSession { technician, ticket }),
        (any::<u64>(), name_s(), line_s()).prop_map(|(id, device, line)| Request::Exec {
            session: SessionId(id),
            device,
            line,
        }),
        any::<u64>().prop_map(|id| Request::TopologyView {
            session: SessionId(id)
        }),
        any::<u64>().prop_map(|id| Request::Finish {
            session: SessionId(id)
        }),
        (option::of(audit_kind_s()), option::of(name_s()))
            .prop_map(|(kind, actor)| Request::AuditQuery { kind, actor }),
        Just(Request::Stats),
        Just(Request::Telemetry),
        trace_tag_s().prop_map(|trace| Request::TraceQuery { trace }),
        (name_s(), any::<u64>(), any::<u64>(), resolution_s()).prop_map(
            |(series, start_ns, end_ns, resolution)| Request::TimeQuery {
                series,
                start_ns,
                end_ns,
                resolution,
            }
        ),
        Just(Request::AlertQuery),
        trace_tag_s().prop_map(|trace| Request::CriticalPath { trace }),
        (
            option::of(any::<u64>()),
            option::of(line_s()),
            option::of(task_s()),
        )
            .prop_map(|(session, spec, ticket)| Request::AnalyzeQuery {
                session: session.map(SessionId),
                spec,
                ticket,
            }),
    ]
    .boxed()
}

/// Canonical 16-hex trace tags plus the empty (untraced) tag.
fn trace_tag_s() -> BoxedStrategy<String> {
    prop_oneof![
        any::<u64>().prop_map(|id| format!("{id:016x}")),
        Just(String::new()),
    ]
    .boxed()
}

fn stage_s() -> BoxedStrategy<Stage> {
    prop_oneof![
        Just(Stage::OpenSession),
        Just(Stage::DerivePrivilege),
        Just(Stage::Exec),
        Just(Stage::Console),
        Just(Stage::Finish),
        Just(Stage::Verify),
        Just(Stage::Schedule),
        Just(Stage::Commit),
    ]
    .boxed()
}

fn span_status_s() -> BoxedStrategy<SpanStatus> {
    prop_oneof![
        Just(SpanStatus::Ok),
        Just(SpanStatus::Denied),
        Just(SpanStatus::Rejected),
        Just(SpanStatus::Error),
    ]
    .boxed()
}

fn span_s() -> BoxedStrategy<Span> {
    (
        (any::<u64>(), any::<u64>(), option::of(any::<u64>())),
        stage_s(),
        name_s(),
        option::of(name_s()),
        (any::<u64>(), any::<u64>()),
        span_status_s(),
        line_s(),
    )
        .prop_map(|(ids, stage, actor, device, times, status, detail)| Span {
            trace: TraceId(ids.0),
            id: SpanId(ids.1),
            parent: ids.2.map(SpanId),
            stage,
            actor,
            device,
            start_ns: times.0,
            duration_ns: times.1,
            status,
            detail,
        })
        .boxed()
}

fn audit_entry_s() -> BoxedStrategy<AuditEntryView> {
    (
        any::<u64>(),
        audit_kind_s(),
        name_s(),
        line_s(),
        trace_tag_s(),
    )
        .prop_map(|(seq, kind, actor, detail, trace)| AuditEntryView {
            seq,
            kind,
            actor,
            detail,
            trace,
        })
        .boxed()
}

fn snapshot_s() -> BoxedStrategy<StatsSnapshot> {
    (
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
    )
        .prop_map(|(a, b, c)| StatsSnapshot {
            sessions_opened: a.0,
            sessions_finished: a.1,
            sessions_evicted: a.2,
            commands_mediated: a.3,
            denials: a.4,
            commits_applied: a.5,
            commits_rejected: a.6,
            commit_conflicts: b.0,
            rate_limited: b.1,
            exec_p50_ns: b.2,
            exec_p99_ns: b.3,
            exec_count: b.4,
            finish_p50_ns: b.5,
            finish_p99_ns: b.6,
            finish_count: b.7,
            journal_errors: c.0,
            records_replayed: c.1,
            torn_bytes_discarded: c.2,
            segments_compacted: c.3,
            recovered_sessions_evicted: c.4,
            analysis_findings: c.5,
            analysis_denials: c.6,
        })
        .boxed()
}

fn resolution_s() -> BoxedStrategy<Resolution> {
    prop_oneof![
        Just(Resolution::Raw),
        Just(Resolution::Mid),
        Just(Resolution::Coarse),
    ]
    .boxed()
}

/// Finite floats only: JSON has no NaN/Inf (the codec nulls them), so
/// the protocol never carries them. Integer ratios exercise both short
/// (`1.0`) and long (`0.333…`) decimal expansions, all of which the
/// shortest-round-trip formatter reproduces exactly.
fn finite_f64_s() -> BoxedStrategy<f64> {
    (any::<i32>(), 1u32..1000)
        .prop_map(|(a, b)| a as f64 / b as f64)
        .boxed()
}

fn bucket_s() -> BoxedStrategy<Bucket> {
    (
        (any::<u64>(), any::<u64>()),
        (finite_f64_s(), finite_f64_s(), finite_f64_s()),
        any::<u64>(),
    )
        .prop_map(|(times, vals, count)| Bucket {
            start_ns: times.0,
            end_ns: times.1,
            min: vals.0,
            max: vals.1,
            sum: vals.2,
            count,
        })
        .boxed()
}

fn alert_s() -> BoxedStrategy<Alert> {
    (
        (name_s(), name_s()),
        any::<u64>(),
        (finite_f64_s(), finite_f64_s()),
        trace_tag_s(),
        line_s(),
    )
        .prop_map(
            |(names, fired_at_ns, burns, exemplar_trace, detail)| Alert {
                rule: names.0,
                series: names.1,
                fired_at_ns,
                burn_short: burns.0,
                burn_long: burns.1,
                exemplar_trace,
                detail,
            },
        )
        .boxed()
}

fn stage_cost_s() -> BoxedStrategy<StageCost> {
    (name_s(), any::<u64>(), any::<u64>(), any::<u64>())
        .prop_map(|(stage, count, total_ns, self_ns)| StageCost {
            stage,
            count,
            total_ns,
            self_ns,
        })
        .boxed()
}

fn severity_s() -> BoxedStrategy<Severity> {
    prop_oneof![
        Just(Severity::Info),
        Just(Severity::Warning),
        Just(Severity::Error),
    ]
    .boxed()
}

fn finding_s() -> BoxedStrategy<Finding> {
    (
        severity_s(),
        name_s(),
        name_s(),
        option::of(0usize..64),
        line_s(),
        option::of(line_s()),
    )
        .prop_map(
            |(severity, code, device, predicate, message, suggestion)| Finding {
                severity,
                code,
                device,
                predicate,
                message,
                suggestion,
            },
        )
        .boxed()
}

fn analysis_report_s() -> BoxedStrategy<AnalysisReport> {
    collection::vec(finding_s(), 0..5)
        .prop_map(|findings| AnalysisReport { findings })
        .boxed()
}

fn report_s() -> BoxedStrategy<CriticalPathReport> {
    (
        trace_tag_s(),
        any::<u64>(),
        collection::vec(stage_cost_s(), 0..4),
        name_s(),
    )
        .prop_map(
            |(trace, total_ns, stages, top_contributor)| CriticalPathReport {
                trace,
                total_ns,
                stages,
                top_contributor,
            },
        )
        .boxed()
}

/// Every `Response` variant.
fn response_s() -> BoxedStrategy<Response> {
    prop_oneof![
        (any::<u64>(), collection::vec(name_s(), 0..5)).prop_map(|(id, devices)| {
            Response::SessionOpened {
                session: SessionId(id),
                devices,
            }
        }),
        line_s().prop_map(|output| Response::ExecOutput { output }),
        (
            collection::vec((name_s(), name_s()), 0..4),
            collection::vec((name_s(), name_s(), name_s(), name_s()), 0..4),
        )
            .prop_map(|(devices, links)| Response::Topology { devices, links }),
        (verdict_s(), any::<bool>(), 1u32..8, 0usize..16).prop_map(
            |(verdict, applied, attempts, changes)| Response::Finished {
                verdict,
                applied,
                attempts,
                changes,
            }
        ),
        collection::vec(audit_entry_s(), 0..4).prop_map(|entries| Response::Audit { entries }),
        snapshot_s().prop_map(|snapshot| Response::Stats { snapshot }),
        line_s().prop_map(|text| Response::Telemetry { text }),
        (trace_tag_s(), collection::vec(span_s(), 0..4))
            .prop_map(|(trace, spans)| Response::Trace { trace, spans }),
        (name_s(), resolution_s(), collection::vec(bucket_s(), 0..4)).prop_map(
            |(series, resolution, points)| Response::TimeSeries {
                series,
                resolution,
                points,
            }
        ),
        collection::vec(alert_s(), 0..3).prop_map(|alerts| Response::Alerts { alerts }),
        report_s().prop_map(|report| Response::CriticalPath { report }),
        analysis_report_s().prop_map(|report| Response::Analysis { report }),
        (error_kind_s(), line_s()).prop_map(|(kind, message)| Response::Error { kind, message }),
    ]
    .boxed()
}

fn encode<T: serde::Serialize>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, value).expect("encode");
    buf
}

/// Series names guaranteed non-canonical: empty, capitalized lead,
/// embedded illegal characters, or over the length cap.
fn bad_series_s() -> BoxedStrategy<String> {
    prop_oneof![
        Just(String::new()),
        "[A-Z][a-zA-Z0-9_.]{0,8}".boxed(),
        "[a-z]{1,4}[ !@#]{1,3}[a-z]{0,4}".boxed(),
        Just("a".repeat(129)),
    ]
    .boxed()
}

/// One shared broker for the request-validation properties: validation
/// happens before any session state, so reuse across cases is safe.
fn validation_broker() -> &'static Broker {
    static BROKER: OnceLock<Broker> = OnceLock::new();
    BROKER.get_or_init(|| {
        let g = heimdall::netmodel::gen::enterprise_network();
        let cp = heimdall::routing::converge(&g.net);
        let policies = heimdall::verify::mine::mine_policies(
            &g.net,
            &cp,
            &heimdall::verify::mine::MinerInput::from_meta(&g.meta),
        );
        Broker::new(g.net, policies, BrokerConfig::default())
    })
}

// ----------------------------------------------------------- properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_request_roundtrips(req in request_s()) {
        let buf = encode(&req);
        let mut cursor = &buf[..];
        let back: Request = read_frame(&mut cursor).expect("decode");
        prop_assert_eq!(back, req);
        prop_assert!(cursor.is_empty(), "frame must consume itself exactly");
    }

    #[test]
    fn every_response_roundtrips(resp in response_s()) {
        let buf = encode(&resp);
        let mut cursor = &buf[..];
        let back: Response = read_frame(&mut cursor).expect("decode");
        prop_assert_eq!(back, resp);
        prop_assert!(cursor.is_empty());
    }

    #[test]
    fn truncation_is_always_detected(req in request_s(), frac in 0u32..1000) {
        let buf = encode(&req);
        // Cut strictly inside the frame: after at least one byte, before
        // the last.
        let cut = 1 + (frac as usize * (buf.len() - 2)) / 1000;
        let mut cursor = &buf[..cut];
        prop_assert!(
            matches!(read_frame::<_, Request>(&mut cursor), Err(FrameError::Truncated)),
            "cut at {} of {} must be Truncated", cut, buf.len()
        );
    }

    #[test]
    fn oversized_prefix_is_always_rejected(extra in 1usize..1_000_000) {
        let declared = MAX_FRAME + extra;
        let mut buf = Vec::new();
        buf.extend_from_slice(&(declared as u32).to_be_bytes());
        buf.extend_from_slice(b"ignored");
        let mut cursor = &buf[..];
        match read_frame::<_, Request>(&mut cursor) {
            Err(FrameError::TooLarge(n)) => prop_assert_eq!(n, declared),
            other => panic!("expected TooLarge, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn non_canonical_series_names_are_bad_requests(series in bad_series_s(), res in resolution_s()) {
        let resp = validation_broker().handle(Request::TimeQuery {
            series,
            start_ns: 0,
            end_ns: u64::MAX,
            resolution: res,
        });
        prop_assert!(
            matches!(resp, Response::Error { kind: ErrorKind::BadRequest, .. }),
            "expected BadRequest, got {:?}", resp
        );
    }

    #[test]
    fn inverted_ranges_are_bad_requests(a in any::<u64>(), b in any::<u64>(), res in resolution_s()) {
        // Force start > end regardless of the draw.
        let start_ns = a.max(b).max(1);
        let end_ns = a.min(b).min(start_ns - 1);
        let resp = validation_broker().handle(Request::TimeQuery {
            series: "any.series".into(),
            start_ns,
            end_ns,
            resolution: res,
        });
        prop_assert!(
            matches!(resp, Response::Error { kind: ErrorKind::BadRequest, .. }),
            "expected BadRequest, got {:?}", resp
        );
    }

    #[test]
    fn well_formed_time_queries_never_error(series in name_s(), a in any::<u64>(), b in any::<u64>(), res in resolution_s()) {
        // Canonical name + ordered range: unknown series is an empty
        // result, never an error.
        let resp = validation_broker().handle(Request::TimeQuery {
            series: series.clone(),
            start_ns: a.min(b),
            end_ns: a.max(b),
            resolution: res,
        });
        let Response::TimeSeries { series: got, .. } = resp else {
            panic!("expected TimeSeries, got {resp:?}");
        };
        prop_assert_eq!(got, series);
    }

    #[test]
    fn analyze_with_both_session_and_spec_is_bad_request(
        id in any::<u64>(),
        spec in line_s(),
        ticket in option::of(task_s()),
    ) {
        let resp = validation_broker().handle(Request::AnalyzeQuery {
            session: Some(SessionId(id)),
            spec: Some(spec),
            ticket,
        });
        prop_assert!(
            matches!(resp, Response::Error { kind: ErrorKind::BadRequest, .. }),
            "expected BadRequest, got {:?}", resp
        );
    }

    #[test]
    fn analyze_with_neither_session_nor_spec_is_bad_request(ticket in option::of(task_s())) {
        let resp = validation_broker().handle(Request::AnalyzeQuery {
            session: None,
            spec: None,
            ticket,
        });
        prop_assert!(
            matches!(resp, Response::Error { kind: ErrorKind::BadRequest, .. }),
            "expected BadRequest, got {:?}", resp
        );
    }

    #[test]
    fn analyze_spec_without_ticket_is_bad_request(spec in line_s()) {
        let resp = validation_broker().handle(Request::AnalyzeQuery {
            session: None,
            spec: Some(spec),
            ticket: None,
        });
        prop_assert!(
            matches!(resp, Response::Error { kind: ErrorKind::BadRequest, .. }),
            "expected BadRequest, got {:?}", resp
        );
    }

    #[test]
    fn unparseable_specs_are_bad_requests(junk in "[a-z]{2,8} [a-z]{2,8}", ticket in task_s()) {
        // Two bare words never form a valid DSL predicate.
        let resp = validation_broker().handle(Request::AnalyzeQuery {
            session: None,
            spec: Some(junk),
            ticket: Some(ticket),
        });
        prop_assert!(
            matches!(resp, Response::Error { kind: ErrorKind::BadRequest, .. }),
            "expected BadRequest, got {:?}", resp
        );
    }

    #[test]
    fn well_formed_spec_analyses_always_answer(ticket in task_s()) {
        // A parseable spec plus any ticket — even one naming unknown
        // devices — must produce a report, never an error.
        let resp = validation_broker().handle(Request::AnalyzeQuery {
            session: None,
            spec: Some("allow(view, fw1)\n".into()),
            ticket: Some(ticket),
        });
        prop_assert!(
            matches!(resp, Response::Analysis { .. }),
            "expected Analysis, got {:?}", resp
        );
    }

    #[test]
    fn frames_stream_back_to_back(reqs in collection::vec(request_s(), 1..6)) {
        let mut buf = Vec::new();
        for r in &reqs {
            write_frame(&mut buf, r).expect("encode");
        }
        let mut cursor = &buf[..];
        for expected in &reqs {
            let got: Request = read_frame(&mut cursor).expect("decode");
            prop_assert_eq!(&got, expected);
        }
        prop_assert!(matches!(
            read_frame::<_, Request>(&mut cursor),
            Err(FrameError::Closed)
        ));
    }
}
