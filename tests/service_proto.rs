//! Property tests for the heimdall-service wire protocol: every frame
//! type round-trips through the length-prefixed JSON codec byte-for-value,
//! truncated streams are always detected, and oversized length prefixes
//! are always rejected before allocation.

use heimdall::enforcer::audit::AuditKind;
use heimdall::enforcer::verifier::Verdict;
use heimdall::privilege::derive::{Task, TaskKind};
use heimdall::service::stats::StatsSnapshot;
use heimdall::service::{
    read_frame, write_frame, AuditEntryView, ErrorKind, FrameError, Request, Response, SessionId,
    MAX_FRAME,
};
use heimdall::telemetry::{Span, SpanId, SpanStatus, Stage, TraceId};
use proptest::prelude::*;

// ------------------------------------------------------------ strategies

fn name_s() -> BoxedStrategy<String> {
    "[a-z][a-z0-9_]{0,11}".boxed()
}

fn line_s() -> BoxedStrategy<String> {
    // Printable ASCII incl. spaces and JSON-hostile quotes/backslashes.
    "[ -~]{0,48}".boxed()
}

fn task_kind_s() -> BoxedStrategy<TaskKind> {
    prop_oneof![
        Just(TaskKind::Connectivity),
        Just(TaskKind::Routing),
        Just(TaskKind::AccessControl),
        Just(TaskKind::Vlan),
        Just(TaskKind::IspChange),
        Just(TaskKind::Monitoring),
    ]
    .boxed()
}

fn task_s() -> BoxedStrategy<Task> {
    (task_kind_s(), collection::vec(name_s(), 0..4))
        .prop_map(|(kind, affected)| Task { kind, affected })
        .boxed()
}

fn audit_kind_s() -> BoxedStrategy<AuditKind> {
    prop_oneof![
        Just(AuditKind::Command),
        Just(AuditKind::Escalation),
        Just(AuditKind::Verification),
        Just(AuditKind::ChangeApplied),
        Just(AuditKind::Session),
    ]
    .boxed()
}

fn verdict_s() -> BoxedStrategy<Verdict> {
    prop_oneof![
        Just(Verdict::Accepted),
        Just(Verdict::RejectedPrivilege),
        Just(Verdict::RejectedPolicy),
        Just(Verdict::RejectedLint),
        Just(Verdict::RejectedStale),
    ]
    .boxed()
}

fn error_kind_s() -> BoxedStrategy<ErrorKind> {
    prop_oneof![
        Just(ErrorKind::SessionNotFound),
        Just(ErrorKind::PermissionDenied),
        Just(ErrorKind::BadCommand),
        Just(ErrorKind::RateLimited),
        Just(ErrorKind::Busy),
        Just(ErrorKind::BadRequest),
    ]
    .boxed()
}

/// Every `Request` variant.
fn request_s() -> BoxedStrategy<Request> {
    prop_oneof![
        (name_s(), task_s())
            .prop_map(|(technician, ticket)| Request::OpenSession { technician, ticket }),
        (any::<u64>(), name_s(), line_s()).prop_map(|(id, device, line)| Request::Exec {
            session: SessionId(id),
            device,
            line,
        }),
        any::<u64>().prop_map(|id| Request::TopologyView {
            session: SessionId(id)
        }),
        any::<u64>().prop_map(|id| Request::Finish {
            session: SessionId(id)
        }),
        (option::of(audit_kind_s()), option::of(name_s()))
            .prop_map(|(kind, actor)| Request::AuditQuery { kind, actor }),
        Just(Request::Stats),
        Just(Request::Telemetry),
        trace_tag_s().prop_map(|trace| Request::TraceQuery { trace }),
    ]
    .boxed()
}

/// Canonical 16-hex trace tags plus the empty (untraced) tag.
fn trace_tag_s() -> BoxedStrategy<String> {
    prop_oneof![
        any::<u64>().prop_map(|id| format!("{id:016x}")),
        Just(String::new()),
    ]
    .boxed()
}

fn stage_s() -> BoxedStrategy<Stage> {
    prop_oneof![
        Just(Stage::OpenSession),
        Just(Stage::DerivePrivilege),
        Just(Stage::Exec),
        Just(Stage::Console),
        Just(Stage::Finish),
        Just(Stage::Verify),
        Just(Stage::Schedule),
        Just(Stage::Commit),
    ]
    .boxed()
}

fn span_status_s() -> BoxedStrategy<SpanStatus> {
    prop_oneof![
        Just(SpanStatus::Ok),
        Just(SpanStatus::Denied),
        Just(SpanStatus::Rejected),
        Just(SpanStatus::Error),
    ]
    .boxed()
}

fn span_s() -> BoxedStrategy<Span> {
    (
        (any::<u64>(), any::<u64>(), option::of(any::<u64>())),
        stage_s(),
        name_s(),
        option::of(name_s()),
        (any::<u64>(), any::<u64>()),
        span_status_s(),
        line_s(),
    )
        .prop_map(|(ids, stage, actor, device, times, status, detail)| Span {
            trace: TraceId(ids.0),
            id: SpanId(ids.1),
            parent: ids.2.map(SpanId),
            stage,
            actor,
            device,
            start_ns: times.0,
            duration_ns: times.1,
            status,
            detail,
        })
        .boxed()
}

fn audit_entry_s() -> BoxedStrategy<AuditEntryView> {
    (
        any::<u64>(),
        audit_kind_s(),
        name_s(),
        line_s(),
        trace_tag_s(),
    )
        .prop_map(|(seq, kind, actor, detail, trace)| AuditEntryView {
            seq,
            kind,
            actor,
            detail,
            trace,
        })
        .boxed()
}

fn snapshot_s() -> BoxedStrategy<StatsSnapshot> {
    (
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
    )
        .prop_map(|(a, b)| StatsSnapshot {
            sessions_opened: a.0,
            sessions_finished: a.1,
            sessions_evicted: a.2,
            commands_mediated: a.3,
            denials: a.4,
            commits_applied: a.5,
            commits_rejected: a.6,
            commit_conflicts: b.0,
            rate_limited: b.1,
            exec_p50_ns: b.2,
            exec_p99_ns: b.3,
            exec_count: b.4,
            finish_p50_ns: b.5,
            finish_p99_ns: b.6,
            finish_count: b.7,
        })
        .boxed()
}

/// Every `Response` variant.
fn response_s() -> BoxedStrategy<Response> {
    prop_oneof![
        (any::<u64>(), collection::vec(name_s(), 0..5)).prop_map(|(id, devices)| {
            Response::SessionOpened {
                session: SessionId(id),
                devices,
            }
        }),
        line_s().prop_map(|output| Response::ExecOutput { output }),
        (
            collection::vec((name_s(), name_s()), 0..4),
            collection::vec((name_s(), name_s(), name_s(), name_s()), 0..4),
        )
            .prop_map(|(devices, links)| Response::Topology { devices, links }),
        (verdict_s(), any::<bool>(), 1u32..8, 0usize..16).prop_map(
            |(verdict, applied, attempts, changes)| Response::Finished {
                verdict,
                applied,
                attempts,
                changes,
            }
        ),
        collection::vec(audit_entry_s(), 0..4).prop_map(|entries| Response::Audit { entries }),
        snapshot_s().prop_map(|snapshot| Response::Stats { snapshot }),
        line_s().prop_map(|text| Response::Telemetry { text }),
        (trace_tag_s(), collection::vec(span_s(), 0..4))
            .prop_map(|(trace, spans)| Response::Trace { trace, spans }),
        (error_kind_s(), line_s()).prop_map(|(kind, message)| Response::Error { kind, message }),
    ]
    .boxed()
}

fn encode<T: serde::Serialize>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, value).expect("encode");
    buf
}

// ----------------------------------------------------------- properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_request_roundtrips(req in request_s()) {
        let buf = encode(&req);
        let mut cursor = &buf[..];
        let back: Request = read_frame(&mut cursor).expect("decode");
        prop_assert_eq!(back, req);
        prop_assert!(cursor.is_empty(), "frame must consume itself exactly");
    }

    #[test]
    fn every_response_roundtrips(resp in response_s()) {
        let buf = encode(&resp);
        let mut cursor = &buf[..];
        let back: Response = read_frame(&mut cursor).expect("decode");
        prop_assert_eq!(back, resp);
        prop_assert!(cursor.is_empty());
    }

    #[test]
    fn truncation_is_always_detected(req in request_s(), frac in 0u32..1000) {
        let buf = encode(&req);
        // Cut strictly inside the frame: after at least one byte, before
        // the last.
        let cut = 1 + (frac as usize * (buf.len() - 2)) / 1000;
        let mut cursor = &buf[..cut];
        prop_assert!(
            matches!(read_frame::<_, Request>(&mut cursor), Err(FrameError::Truncated)),
            "cut at {} of {} must be Truncated", cut, buf.len()
        );
    }

    #[test]
    fn oversized_prefix_is_always_rejected(extra in 1usize..1_000_000) {
        let declared = MAX_FRAME + extra;
        let mut buf = Vec::new();
        buf.extend_from_slice(&(declared as u32).to_be_bytes());
        buf.extend_from_slice(b"ignored");
        let mut cursor = &buf[..];
        match read_frame::<_, Request>(&mut cursor) {
            Err(FrameError::TooLarge(n)) => prop_assert_eq!(n, declared),
            other => panic!("expected TooLarge, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn frames_stream_back_to_back(reqs in collection::vec(request_s(), 1..6)) {
        let mut buf = Vec::new();
        for r in &reqs {
            write_frame(&mut buf, r).expect("encode");
        }
        let mut cursor = &buf[..];
        for expected in &reqs {
            let got: Request = read_frame(&mut cursor).expect("decode");
            prop_assert_eq!(&got, expected);
        }
        prop_assert!(matches!(
            read_frame::<_, Request>(&mut cursor),
            Err(FrameError::Closed)
        ));
    }
}
