//! Streaming drills for the heimdall-net push side: subscriptions over
//! real TCP sockets, server-pushed SLO alerts with no polling, mediated
//! subscription denial that leaks zero events, tenant-scoped audit
//! isolation, and the stalled-subscriber path — gap markers, then
//! slow-consumer eviction, with a fast subscriber provably losing
//! nothing.

use heimdall::net::{
    BoundAcceptor, BrokerFleet, ClientError, NetClient, NetConfig, NetServer, RejectReason,
    TenantKeys,
};
use heimdall::netmodel::gen::enterprise_network;
use heimdall::netmodel::topology::Network;
use heimdall::obs::{ObsConfig, ObsEvent, Resolution, SloRule, Topic};
use heimdall::privilege::derive::{Task, TaskKind};
use heimdall::routing::converge;
use heimdall::service::proto::{Request, Response};
use heimdall::service::BrokerConfig;
use heimdall::verify::mine::{mine_policies, MinerInput};
use heimdall::verify::policy::PolicySet;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn healthy_enterprise() -> (Network, PolicySet) {
    let g = enterprise_network();
    let cp = converge(&g.net);
    let policies = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
    (g.net, policies)
}

fn key_for(tenant: &str) -> Vec<u8> {
    format!("shared-key-{tenant}").into_bytes()
}

fn ticket() -> Task {
    Task {
        kind: TaskKind::Routing,
        affected: vec!["h4".into(), "srv1".into()],
    }
}

/// A TCP server over an `n`-shard fleet with a caller-chosen broker
/// config, keys for tech00..tech31.
fn start_server(
    shards: usize,
    broker_config: BrokerConfig,
    net_config: NetConfig,
) -> (NetServer, SocketAddr) {
    let (production, policies) = healthy_enterprise();
    let fleet = Arc::new(BrokerFleet::from_template(
        &production,
        &policies,
        &broker_config,
        shards,
    ));
    let mut keys = TenantKeys::new();
    for i in 0..32 {
        let t = format!("tech{i:02}");
        keys.insert(&t, &key_for(&t));
    }
    let (acceptor, addr) = BoundAcceptor::tcp("127.0.0.1:0").expect("bind tcp");
    let server = NetServer::start(fleet, keys, net_config, vec![acceptor]);
    (server, addr)
}

fn connect(addr: SocketAddr, tenant: &str) -> NetClient {
    NetClient::connect_tcp(&addr.to_string(), tenant, &key_for(tenant)).expect("connect")
}

/// Opens a session as the connection identity (granting the tenant a
/// standing view privilege the subscription mediation can find).
fn open_session(client: &mut NetClient) -> heimdall::service::proto::SessionId {
    match client
        .call(Request::OpenSession {
            technician: String::new(),
            ticket: ticket(),
        })
        .expect("open session")
    {
        Response::SessionOpened { session, .. } => session,
        other => panic!("expected SessionOpened, got {other:?}"),
    }
}

/// An SLO excursion on the tenant's home shard arrives as a pushed
/// `Event` frame over the socket — the client never polls `AlertQuery`
/// to learn about it. Afterwards the poll surfaces (AlertQuery,
/// TimeQuery, Telemetry, MetricsQuery) are live over TCP too, proving
/// the monitor loop feeds the obs stores in network mode.
#[test]
fn slo_trip_is_pushed_over_the_socket() {
    let broker_config = BrokerConfig {
        obs: ObsConfig {
            // Any mediated exec breaches a 1ns p99 ceiling.
            rules: vec![SloRule::ceiling("exec_p99", "stage.exec.p99_ns", 1.0)],
            ..ObsConfig::default()
        },
        ..BrokerConfig::default()
    };
    let net_config = NetConfig {
        scrape_interval: Duration::from_millis(5),
        ..NetConfig::default()
    };
    let (server, addr) = start_server(2, broker_config, net_config);
    let mut client = connect(addr, "tech00");
    let session = open_session(&mut client);
    client.subscribe(&[Topic::Slo]).expect("subscribe slo");
    let exec = client
        .call(Request::Exec {
            session,
            device: "fw1".into(),
            line: "ip route 10.9.0.0 255.255.255.0 10.2.1.10".into(),
        })
        .expect("exec");
    assert!(matches!(exec, Response::ExecOutput { .. }), "{exec:?}");

    // The trip arrives by push: no AlertQuery has been issued yet.
    let deadline = Instant::now() + Duration::from_secs(10);
    let alert = loop {
        assert!(Instant::now() < deadline, "no SloTrip pushed within 10s");
        match client
            .try_next_event(Duration::from_millis(200))
            .expect("event stream")
        {
            Some((_, ObsEvent::SloTrip { alert, .. })) => break alert,
            Some((_, ObsEvent::SloRearm { .. })) | None => continue,
            Some((_, other)) => panic!("unexpected event on slo channel: {other:?}"),
        }
    };
    assert_eq!(alert.rule, "exec_p99");
    assert!(!alert.detail.is_empty());

    // Satellite: the poll surfaces the scrape loop feeds are live over
    // the wire in network mode — alerts, time series, Prometheus text.
    match client.call(Request::AlertQuery).expect("alert query") {
        Response::Alerts { alerts } => {
            assert!(
                alerts.iter().any(|a| a.rule == "exec_p99"),
                "alert history must contain the pushed trip: {alerts:?}"
            );
        }
        other => panic!("expected Alerts, got {other:?}"),
    }
    match client
        .call(Request::TimeQuery {
            series: "stage.exec.p99_ns".into(),
            start_ns: 0,
            end_ns: u64::MAX / 2,
            resolution: Resolution::Raw,
        })
        .expect("time query")
    {
        Response::TimeSeries { points, .. } => {
            assert!(!points.is_empty(), "scrape loop must fill the store");
        }
        other => panic!("expected TimeSeries, got {other:?}"),
    }
    match client.call(Request::Telemetry).expect("telemetry") {
        Response::Telemetry { text } => {
            assert!(
                text.contains("heimdall_net_handshakes_ok_total"),
                "net counters must join the exposition: {text}"
            );
        }
        other => panic!("expected Telemetry, got {other:?}"),
    }
    // The fleet aggregate is rebuilt once per monitor tick, so it can
    // lag the pushed alert by a few milliseconds — poll until it lands.
    let deadline = Instant::now() + Duration::from_secs(5);
    let metrics = loop {
        let metrics = match client.call(Request::MetricsQuery).expect("metrics query") {
            Response::Metrics { metrics } => metrics,
            other => panic!("expected Metrics, got {other:?}"),
        };
        if metrics.alerts_total >= 1 {
            break metrics;
        }
        assert!(
            Instant::now() < deadline,
            "aggregate never caught the alert: {metrics}"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(metrics.shards, 2);
    assert!(metrics.scrapes_total > 0, "monitor loop must be scraping");
    let handshakes = metrics
        .net
        .iter()
        .find(|(n, _)| n == "handshakes_ok")
        .map(|(_, v)| *v);
    assert_eq!(handshakes, Some(1), "net counters ride along: {metrics}");
    assert!(metrics.subscribers >= 1, "this subscription is counted");
    let _ = client.bye();
    server.shutdown();
}

/// A tenant with no live session has no view grant: subscribing to a
/// fleet-scoped topic is a typed `SubscriptionDenied` reject, a counted
/// server-side denial, and — crucially — zero delivered events, even
/// while alerts fire for authorized subscribers. Tenant-scoped topics
/// stay available on identity alone.
#[test]
fn denied_subscription_receives_nothing() {
    let (server, addr) = start_server(
        2,
        BrokerConfig::default(),
        NetConfig {
            scrape_interval: Duration::from_millis(5),
            ..NetConfig::default()
        },
    );
    let mut client = connect(addr, "tech01");
    let denied = client.subscribe(&[Topic::Slo, Topic::Metrics]);
    match denied {
        Err(ClientError::Rejected { reason, .. }) => {
            assert_eq!(reason, RejectReason::SubscriptionDenied);
        }
        other => panic!("expected SubscriptionDenied, got {other:?}"),
    }
    assert_eq!(server.net_stats().rejects_subscription_denied, 1);
    // The denial is recorded broker-side, matching denied-poll semantics.
    assert!(
        server.fleet().aggregate_stats().denials >= 1,
        "mediated denial must be counted"
    );
    // Make the fleet metrics churn (another tenant works a session), then
    // confirm the denied connection still gets zero pushed events.
    let mut worker = connect(addr, "tech02");
    let session = open_session(&mut worker);
    let _ = worker.call(Request::Exec {
        session,
        device: "fw1".into(),
        line: "ip route 10.8.0.0 255.255.255.0 10.2.1.10".into(),
    });
    assert!(
        client
            .try_next_event(Duration::from_millis(300))
            .expect("quiescent stream")
            .is_none(),
        "a denied subscription must leak no events"
    );
    // Identity-scoped topics need no view grant: the same tenant can
    // subscribe to its own audit feed after the fleet-scope denial.
    client
        .subscribe(&[Topic::Audit])
        .expect("audit is identity-scoped");
    let _ = client.bye();
    let _ = worker.bye();
    server.shutdown();
}

/// Audit-append events are tenant-scoped at delivery: a subscriber only
/// ever sees its own entries, no matter how busy other tenants are.
#[test]
fn audit_stream_is_tenant_isolated() {
    let (server, addr) = start_server(
        2,
        BrokerConfig::default(),
        NetConfig {
            scrape_interval: Duration::from_millis(5),
            ..NetConfig::default()
        },
    );
    let mut watcher = connect(addr, "tech03");
    watcher.subscribe(&[Topic::Audit]).expect("subscribe audit");
    // A foreign tenant generates plenty of audit traffic.
    let mut other = connect(addr, "tech04");
    let session = open_session(&mut other);
    let _ = other.call(Request::Exec {
        session,
        device: "fw1".into(),
        line: "ip route 10.7.0.0 255.255.255.0 10.2.1.10".into(),
    });
    let _ = other.call(Request::Finish { session });
    assert!(
        watcher
            .try_next_event(Duration::from_millis(400))
            .expect("stream")
            .is_none(),
        "another tenant's audit entries must not be delivered"
    );
    // The watcher's own activity does arrive.
    let _ = open_session(&mut watcher);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        assert!(Instant::now() < deadline, "own audit append never pushed");
        match watcher
            .try_next_event(Duration::from_millis(200))
            .expect("stream")
        {
            Some((_, ObsEvent::AuditAppend { actor, .. })) => {
                assert_eq!(actor, "tech03", "only own entries may arrive");
                break;
            }
            None => continue,
            Some((_, other)) => panic!("unexpected event on audit channel: {other:?}"),
        }
    }
    let _ = watcher.bye();
    let _ = other.bye();
    server.shutdown();
}

/// The slow-consumer path end-to-end: a subscriber that pauses gets a
/// typed `Lagged` gap marker accounting for every dropped event
/// (conservation: received + gap == published); one that stalls for
/// good is evicted once it exceeds the drop budget — while a fast
/// subscriber on the same bus receives every single event with no gaps.
#[test]
fn stalled_subscriber_gap_marked_then_evicted_fast_one_unaffected() {
    let (server, addr) = start_server(
        1,
        BrokerConfig::default(),
        NetConfig {
            scrape_interval: Duration::from_millis(10),
            write_queue_depth: 16,
            event_queue_depth: 16,
            event_max_dropped: 32,
            ..NetConfig::default()
        },
    );
    let bus = server.event_bus();
    // Both subscribers need a standing view grant for the Net topic.
    let mut stalled = connect(addr, "tech05");
    open_session(&mut stalled);
    stalled.subscribe(&[Topic::Net]).expect("subscribe stalled");
    let mut fast = connect(addr, "tech06");
    open_session(&mut fast);
    fast.subscribe(&[Topic::Net]).expect("subscribe fast");

    // ~4KB payloads so queues and socket buffers fill in tens of events
    // rather than thousands.
    let publish = |tag: &str, i: u64| {
        bus.publish(&ObsEvent::NetThreshold {
            counter: format!("{tag}-{i}-{}", "x".repeat(4096)),
            value: i,
            threshold: 1,
            at_ns: i,
        });
    };
    // The fast subscriber drains continuously on its own thread,
    // counting events and summing any gap markers, until the sentinel.
    let fast_side = std::thread::spawn(move || {
        let mut events: u64 = 0;
        let mut lagged: u64 = 0;
        loop {
            match fast.try_next_event(Duration::from_secs(5)) {
                Ok(Some((_, ObsEvent::NetThreshold { counter, .. }))) => {
                    if counter.starts_with("done") {
                        break;
                    }
                    events += 1;
                }
                Ok(Some((_, ObsEvent::Lagged { dropped }))) => lagged += dropped,
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
        (events, lagged)
    });

    // Phase 1: the stalled subscriber reads nothing while events pile
    // up past its bounded queue — publish until the bus records drops.
    let mut published: u64 = 0;
    let before = bus.stats().dropped;
    for i in 0..3000 {
        publish("p1", i);
        published += 1;
        if bus.stats().dropped > before {
            break;
        }
        std::thread::sleep(Duration::from_micros(500));
    }
    assert!(
        bus.stats().dropped > before,
        "a non-reading subscriber must overflow its bounded queue"
    );
    // It wakes up and drains to quiescence...
    let mut received: u64 = 0;
    let mut gap: u64 = 0;
    while let Some((_, event)) = stalled
        .try_next_event(Duration::from_millis(400))
        .expect("drain")
    {
        match event {
            ObsEvent::NetThreshold { .. } => received += 1,
            ObsEvent::Lagged { dropped } => gap += dropped,
            _ => {}
        }
    }
    // ...then one more publish flushes the pending gap marker at the
    // gap position. Conservation: every published event was either
    // received or accounted for in a typed gap — no silent loss.
    publish("p1-flush", published);
    published += 1;
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        assert!(Instant::now() < deadline, "flush event never arrived");
        match stalled
            .try_next_event(Duration::from_millis(200))
            .expect("flush")
        {
            Some((_, ObsEvent::NetThreshold { counter, .. })) => {
                if counter.starts_with("p1-flush") {
                    received += 1;
                    break;
                }
                received += 1;
            }
            Some((_, ObsEvent::Lagged { dropped })) => gap += dropped,
            _ => continue,
        }
    }
    assert!(gap >= 1, "the pause must surface as a typed gap marker");
    assert_eq!(
        received + gap,
        published,
        "conservation: received + gap == published"
    );

    // Phase 2: the subscriber stalls for good; once its lifetime drops
    // exceed the budget it is evicted — and only it.
    let evicted_before = bus.stats().evicted;
    for i in 0..3000 {
        publish("p2", i);
        published += 1;
        if bus.stats().evicted > evicted_before {
            break;
        }
        std::thread::sleep(Duration::from_micros(500));
    }
    assert!(
        bus.stats().evicted > evicted_before,
        "exceeding the drop budget must evict the subscriber"
    );
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.net_stats().slow_consumer_evictions == 0 {
        assert!(Instant::now() < deadline, "eviction never hit net stats");
        std::thread::sleep(Duration::from_millis(5));
    }
    // The evicted connection's stream ends (buffered frames may still
    // arrive first, then the socket is done).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "evicted socket never closed");
        match stalled.try_next_event(Duration::from_millis(100)) {
            Ok(Some(_)) | Ok(None) => continue,
            Err(_) => break,
        }
    }
    // The fast subscriber saw everything: every event, zero gaps.
    publish("done", 0);
    let (fast_events, fast_lagged) = fast_side.join().expect("fast side");
    assert_eq!(fast_lagged, 0, "fast subscriber must never lag");
    assert_eq!(
        fast_events, published,
        "fast subscriber must receive every published event"
    );
    server.shutdown();
}

/// The malformed-subscription matrix: empty topic lists, channel
/// collisions, and unsubscribing a channel that has no subscription are
/// all typed `BadFrame` rejects — and none of them damage the
/// connection, which keeps working afterwards.
#[test]
fn malformed_subscriptions_are_typed_rejects() {
    let (server, addr) = start_server(1, BrokerConfig::default(), NetConfig::default());
    let mut client = connect(addr, "tech07");
    // Empty topics.
    match client.subscribe(&[]) {
        Err(ClientError::Rejected { reason, .. }) => assert_eq!(reason, RejectReason::BadFrame),
        other => panic!("expected BadFrame, got {other:?}"),
    }
    // Channel collision: audit is identity-scoped, so the first
    // subscribe succeeds without a session; the second on the same
    // channel is refused.
    client.subscribe_on(77, &[Topic::Audit]).expect("first");
    match client.subscribe_on(77, &[Topic::Audit]) {
        Err(ClientError::Rejected { reason, .. }) => assert_eq!(reason, RejectReason::BadFrame),
        other => panic!("expected BadFrame on collision, got {other:?}"),
    }
    // Unsubscribing a channel nobody subscribed.
    match client.unsubscribe(9999) {
        Err(ClientError::Rejected { reason, .. }) => assert_eq!(reason, RejectReason::BadFrame),
        other => panic!("expected BadFrame on unknown channel, got {other:?}"),
    }
    // The real subscription still tears down cleanly, the channel is
    // reusable, and the connection still serves requests.
    client.unsubscribe(77).expect("unsubscribe");
    client.subscribe_on(77, &[Topic::Audit]).expect("reusable");
    assert!(matches!(
        client.call(Request::Stats).expect("stats"),
        Response::Stats { .. }
    ));
    let stats = server.net_stats();
    assert_eq!(stats.rejects_bad_frame, 3);
    assert_eq!(stats.subscriptions_opened, 2);
    assert_eq!(stats.subscriptions_closed, 1);
    let _ = client.bye();
    server.shutdown();
}

mod frame_properties {
    use super::*;
    use heimdall::net::{ClientFrame, ServerFrame};
    use heimdall::obs::Alert;
    use proptest::prelude::*;

    fn topic_s() -> BoxedStrategy<Topic> {
        prop_oneof![
            Just(Topic::Slo),
            Just(Topic::Recorder),
            Just(Topic::Analyzer),
            Just(Topic::Audit),
            Just(Topic::Net),
            Just(Topic::Metrics),
        ]
        .boxed()
    }

    fn name_s() -> BoxedStrategy<String> {
        "[a-z][a-z0-9_.-]{0,15}".boxed()
    }

    fn event_s() -> BoxedStrategy<ObsEvent> {
        prop_oneof![
            (any::<u64>()).prop_map(|dropped| ObsEvent::Lagged { dropped }),
            (0usize..8, name_s(), any::<u64>())
                .prop_map(|(shard, rule, at_ns)| { ObsEvent::SloRearm { shard, rule, at_ns } }),
            (0usize..8, name_s(), 0usize..4096, any::<u64>()).prop_map(
                |(shard, kind, spans, at_ns)| ObsEvent::RecorderDump {
                    shard,
                    kind,
                    spans,
                    at_ns,
                }
            ),
            (
                0usize..8,
                name_s(),
                name_s(),
                name_s(),
                name_s(),
                any::<u64>()
            )
                .prop_map(|(shard, technician, code, severity, device, at_ns)| {
                    ObsEvent::AnalyzerFinding {
                        shard,
                        technician,
                        code,
                        severity,
                        device,
                        at_ns,
                    }
                }),
            (
                0usize..8,
                any::<u64>(),
                name_s(),
                name_s(),
                name_s(),
                any::<u64>()
            )
                .prop_map(|(shard, seq, kind, actor, trace, at_ns)| {
                    ObsEvent::AuditAppend {
                        shard,
                        seq,
                        kind,
                        actor,
                        trace,
                        at_ns,
                    }
                }),
            (name_s(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
                |(counter, value, threshold, at_ns)| ObsEvent::NetThreshold {
                    counter,
                    value,
                    threshold,
                    at_ns,
                }
            ),
            (0usize..8, name_s(), any::<u64>()).prop_map(|(shards, changed, at_ns)| {
                ObsEvent::MetricsDelta {
                    shards,
                    changed,
                    at_ns,
                }
            }),
            (0usize..8, name_s(), name_s(), any::<u64>(), name_s()).prop_map(
                |(shard, rule, series, fired_at_ns, detail)| ObsEvent::SloTrip {
                    shard,
                    alert: Alert {
                        rule,
                        series,
                        fired_at_ns,
                        burn_short: 1.5,
                        burn_long: 1.0,
                        exemplar_trace: String::new(),
                        detail,
                    },
                }
            ),
        ]
        .boxed()
    }

    proptest! {
        #[test]
        fn subscribe_frames_roundtrip(
            channel in any::<u64>(),
            topics in proptest::collection::vec(topic_s(), 0..6),
        ) {
            let frame = ClientFrame::Subscribe { channel, topics: topics.clone() };
            let json = serde_json::to_string(&frame).unwrap();
            prop_assert_eq!(serde_json::from_str::<ClientFrame>(&json).unwrap(), frame);
            let frame = ClientFrame::Unsubscribe { channel };
            let json = serde_json::to_string(&frame).unwrap();
            prop_assert_eq!(serde_json::from_str::<ClientFrame>(&json).unwrap(), frame);
            let frame = ServerFrame::Subscribed { channel, topics };
            let json = serde_json::to_string(&frame).unwrap();
            prop_assert_eq!(serde_json::from_str::<ServerFrame>(&json).unwrap(), frame);
        }

        #[test]
        fn event_frames_roundtrip(channel in any::<u64>(), event in event_s()) {
            let frame = ServerFrame::Event { channel, event };
            let json = serde_json::to_string(&frame).unwrap();
            prop_assert_eq!(serde_json::from_str::<ServerFrame>(&json).unwrap(), frame);
        }
    }
}
