//! Stress: many scripted technicians race their commits into one shared
//! production network through the session broker.
//!
//! The invariant under test is the broker's optimistic-commit contract:
//! every change-set that is *not* permanently stale lands exactly once —
//! none lost to a lost-update race, none double-applied by a retry — and
//! the shared audit chain stays verifiable throughout.

use heimdall::netmodel::gen::enterprise_network;
use heimdall::netmodel::topology::Network;
use heimdall::privilege::derive::{Task, TaskKind};
use heimdall::routing::converge;
use heimdall::service::{
    read_frame, write_frame, Broker, BrokerConfig, Request, Response, SessionService,
};
use heimdall::verify::checker::check_policies;
use heimdall::verify::mine::{mine_policies, MinerInput};
use heimdall::verify::policy::PolicySet;
use std::sync::Arc;
use std::thread;

/// Healthy enterprise production plus the policies mined from it.
fn healthy_enterprise() -> (Network, PolicySet) {
    let g = enterprise_network();
    let cp = converge(&g.net);
    let policies = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
    (g.net, policies)
}

/// How many times `prefix` appears as a static route anywhere in `net`.
fn route_count(net: &Network, prefix: &str) -> usize {
    net.devices()
        .flat_map(|(_, d)| d.config.static_routes.iter())
        .filter(|r| r.prefix.to_string().starts_with(prefix))
        .count()
}

/// The unique route prefix technician `i` announces.
fn prefix_for(i: usize) -> String {
    format!("10.{}.0.0", 100 + i)
}

#[test]
fn concurrent_commits_none_lost_none_duplicated() {
    const N: usize = 24;
    let (production, policies) = healthy_enterprise();
    let config = BrokerConfig {
        // Contention is the point here: give retries enough budget that
        // every racing change-set eventually lands on fresh state.
        max_commit_retries: 64,
        ..BrokerConfig::default()
    };
    let broker = Arc::new(Broker::new(production, policies, config));

    let handles: Vec<_> = (0..N)
        .map(|i| {
            let broker = Arc::clone(&broker);
            thread::spawn(move || {
                let host = ["h1", "h4", "h7"][i % 3];
                let ticket = Task {
                    kind: TaskKind::Routing,
                    affected: vec![host.to_string(), "srv1".to_string()],
                };
                let technician = format!("tech{i:02}");
                let (id, devices) = broker.open_session(&technician, ticket).unwrap();
                assert!(
                    devices.contains(&"fw1".to_string()),
                    "{technician}: slice {devices:?} must reach fw1"
                );
                // Every technician edits the same shared device, so base
                // fingerprints collide constantly.
                let line = format!("ip route {} 255.255.255.0 10.2.1.10", prefix_for(i));
                broker.exec(id, "fw1", &line).unwrap();
                broker.finish(id).unwrap()
            })
        })
        .collect();

    let reports: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Every change-set landed, each exactly once.
    let mut retried = 0u64;
    for (i, report) in reports.iter().enumerate() {
        assert!(report.applied, "tech{i:02} lost its commit: {report:?}");
        assert!(report.changes > 0);
        retried += u64::from(report.attempts - 1);
    }
    let healed = broker.production();
    for i in 0..N {
        assert_eq!(
            route_count(&healed, &prefix_for(i)),
            1,
            "route {} must appear exactly once",
            prefix_for(i)
        );
    }

    let snap = broker.stats();
    assert_eq!(snap.commits_applied, N as u64);
    assert_eq!(snap.commits_rejected, 0);
    assert_eq!(snap.commit_conflicts, retried);
    assert_eq!(broker.live_sessions(), 0);

    // Mined policies still hold on the healed network, and the shared
    // audit chain survived N concurrent writers.
    let cp = converge(&healed);
    assert!(check_policies(&healed, &cp, broker.policies()).all_hold());
    assert!(broker.verify_audit());
}

#[test]
fn stale_commit_beyond_retry_budget_is_rejected_not_applied() {
    let (production, policies) = healthy_enterprise();
    let config = BrokerConfig {
        // No retry budget: the second commit on the same device must be
        // rejected as stale rather than silently rebased.
        max_commit_retries: 0,
        ..BrokerConfig::default()
    };
    let broker = Broker::new(production, policies, config);
    let ticket = || Task {
        kind: TaskKind::Routing,
        affected: vec!["h4".to_string(), "srv1".to_string()],
    };
    let (alice, _) = broker.open_session("alice", ticket()).unwrap();
    let (bob, _) = broker.open_session("bob", ticket()).unwrap();
    broker
        .exec(alice, "fw1", "ip route 10.200.0.0 255.255.255.0 10.2.1.10")
        .unwrap();
    broker
        .exec(bob, "fw1", "ip route 10.201.0.0 255.255.255.0 10.2.1.10")
        .unwrap();

    let first = broker.finish(alice).unwrap();
    assert!(first.applied);
    assert_eq!(first.attempts, 1);

    let second = broker.finish(bob).unwrap();
    assert!(!second.applied, "stale commit must not apply: {second:?}");
    assert_eq!(second.attempts, 1);

    // Exactly the non-stale change-set landed.
    let net = broker.production();
    assert_eq!(route_count(&net, "10.200.0.0"), 1);
    assert_eq!(route_count(&net, "10.201.0.0"), 0);
    let snap = broker.stats();
    assert_eq!(snap.commits_applied, 1);
    assert_eq!(snap.commits_rejected, 1);
    assert!(broker.verify_audit());
}

#[test]
fn idle_eviction_races_open_and_exec_without_double_counting() {
    use std::time::Duration;

    const IDLE: usize = 6;
    const BUSY: usize = 4;
    let (production, policies) = healthy_enterprise();
    let config = BrokerConfig {
        idle_ttl: Duration::from_millis(60),
        ..BrokerConfig::default()
    };
    let broker = Arc::new(Broker::new(production, policies, config));
    let ticket = || Task {
        kind: TaskKind::Routing,
        affected: vec!["h4".to_string(), "srv1".to_string()],
    };

    // The idle cohort opens twins and walks away.
    let abandoned: Vec<_> = (0..IDLE)
        .map(|i| {
            broker
                .open_session(&format!("idle{i}"), ticket())
                .unwrap()
                .0
        })
        .collect();

    // The busy cohort keeps exec-ing (refreshing last_used) while two
    // evictor threads sweep concurrently with the traffic.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let busy_handles: Vec<_> = (0..BUSY)
        .map(|i| {
            let broker = Arc::clone(&broker);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let (id, _) = broker.open_session(&format!("busy{i}"), ticket()).unwrap();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    broker.exec(id, "fw1", "show running-config").unwrap();
                    thread::sleep(Duration::from_millis(10));
                }
                id
            })
        })
        .collect();
    let evictors: Vec<_> = (0..2)
        .map(|_| {
            let broker = Arc::clone(&broker);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut total = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    total += broker.evict_idle();
                    thread::sleep(Duration::from_millis(15));
                }
                total
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(250));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let busy_ids: Vec<_> = busy_handles
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();
    let evicted_total: usize = evictors.into_iter().map(|h| h.join().unwrap()).sum();

    // Each abandoned session was evicted exactly once — two racing
    // sweepers never double-count a victim — and its twin slice is gone.
    assert_eq!(evicted_total, IDLE);
    assert_eq!(broker.stats().sessions_evicted, IDLE as u64);
    for id in abandoned {
        assert!(
            broker.exec(id, "fw1", "show running-config").is_err(),
            "evicted session {id} must not be reachable"
        );
    }
    // The busy cohort survived every sweep.
    assert_eq!(broker.live_sessions(), BUSY);
    for id in busy_ids {
        broker.exec(id, "fw1", "show running-config").unwrap();
    }
    // Every eviction left exactly one audited record.
    let session_entries =
        broker.audit_query(Some(heimdall::enforcer::audit::AuditKind::Session), None);
    let eviction_records = session_entries
        .iter()
        .filter(|e| e.detail.contains("evicted"))
        .count();
    assert_eq!(eviction_records, IDLE);
    assert!(broker.verify_audit());
}

#[test]
fn racing_sessions_over_framed_connections() {
    const N: usize = 8;
    let (production, policies) = healthy_enterprise();
    let config = BrokerConfig {
        max_commit_retries: 64,
        ..BrokerConfig::default()
    };
    let service = Arc::new(SessionService::new(
        Broker::new(production, policies, config),
        N,
        N * 2,
    ));

    let handles: Vec<_> = (0..N)
        .map(|i| {
            let service = Arc::clone(&service);
            thread::spawn(move || {
                let mut conn = service.connect().unwrap();
                write_frame(
                    &mut conn,
                    &Request::OpenSession {
                        technician: format!("remote{i}"),
                        ticket: Task {
                            kind: TaskKind::Routing,
                            affected: vec!["h4".to_string(), "srv1".to_string()],
                        },
                    },
                )
                .unwrap();
                let Response::SessionOpened { session, .. } = read_frame(&mut conn).unwrap() else {
                    panic!("expected SessionOpened");
                };
                write_frame(
                    &mut conn,
                    &Request::Exec {
                        session,
                        device: "fw1".to_string(),
                        line: format!("ip route 10.{}.0.0 255.255.255.0 10.2.1.10", 150 + i),
                    },
                )
                .unwrap();
                let Response::ExecOutput { .. } = read_frame(&mut conn).unwrap() else {
                    panic!("expected ExecOutput");
                };
                write_frame(&mut conn, &Request::Finish { session }).unwrap();
                let Response::Finished { applied, .. } = read_frame(&mut conn).unwrap() else {
                    panic!("expected Finished");
                };
                applied
            })
        })
        .collect();

    for h in handles {
        assert!(h.join().unwrap(), "a framed commit was lost");
    }
    let net = service.broker().production();
    for i in 0..N {
        assert_eq!(route_count(&net, &format!("10.{}.0.0", 150 + i)), 1);
    }
    assert!(service.broker().verify_audit());
}
