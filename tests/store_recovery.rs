//! Crash-recovery drills for the durable broker: a broker journaling
//! into `heimdall-store` is killed at various points — mid-flight,
//! mid-record, with flipped bits — and a fresh broker recovering from
//! the same storage must come back prefix-consistent: every
//! *acknowledged* commit present exactly once, the audit chain
//! re-verified, crash-orphaned sessions evicted on the record, and the
//! recovery counters surfaced in [`StatsSnapshot`].

use heimdall::netmodel::gen::enterprise_network;
use heimdall::netmodel::topology::Network;
use heimdall::privilege::derive::{Task, TaskKind};
use heimdall::routing::converge;
use heimdall::service::{Broker, BrokerConfig};
use heimdall::store::{Durability, MemStorage, Storage};
use heimdall::verify::checker::check_policies;
use heimdall::verify::mine::{mine_policies, MinerInput};
use heimdall::verify::policy::PolicySet;

/// Healthy enterprise production plus the policies mined from it — the
/// deterministic genesis every recovery replays onto.
fn healthy_enterprise() -> (Network, PolicySet) {
    let g = enterprise_network();
    let cp = converge(&g.net);
    let policies = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
    (g.net, policies)
}

fn ticket() -> Task {
    Task {
        kind: TaskKind::Routing,
        affected: vec!["h4".to_string(), "srv1".to_string()],
    }
}

/// The unique route prefix commit `i` lands on fw1.
fn prefix_for(i: usize) -> String {
    format!("10.{}.0.0", 100 + i)
}

fn route_count(net: &Network, prefix: &str) -> usize {
    net.devices()
        .flat_map(|(_, d)| d.config.static_routes.iter())
        .filter(|r| r.prefix.to_string().starts_with(prefix))
        .count()
}

fn durable_broker(storage: &MemStorage, config: BrokerConfig) -> Broker {
    let (production, policies) = healthy_enterprise();
    Broker::open_durable(production, policies, config, Box::new(storage.clone()))
        .expect("durable open succeeds")
}

/// Runs `commits` sessions to completion, each landing one unique route;
/// every `finish` acknowledgement implies the commit is on stable
/// storage (group-commit sync).
fn land_commits(broker: &Broker, commits: std::ops::Range<usize>) {
    for i in commits {
        let (id, _) = broker
            .open_session(&format!("committer{i}"), ticket())
            .unwrap();
        broker
            .exec(
                id,
                "fw1",
                &format!("ip route {} 255.255.255.0 10.2.1.10", prefix_for(i)),
            )
            .unwrap();
        let report = broker.finish(id).unwrap();
        assert!(report.applied, "commit {i} must land: {report:?}");
    }
}

/// The tentpole drill: N sessions open, K commits acknowledged, then the
/// process dies. The recovered broker must hold all K commits, evict the
/// N-K orphans with an audit trail, and keep counting from where the
/// crashed process left off.
#[test]
fn broker_restart_drill_no_acked_commit_lost() {
    const ORPHANS: usize = 3;
    const COMMITS: usize = 3;
    let storage = MemStorage::new();
    let broker = durable_broker(&storage, BrokerConfig::default());

    // Three technicians open twins and never come back...
    for i in 0..ORPHANS {
        broker
            .open_session(&format!("orphan{i}"), ticket())
            .unwrap();
    }
    // ...three others land commits; each ack syncs the journal, which
    // (prefix ordering) also makes the earlier session-opens durable.
    land_commits(&broker, 0..COMMITS);
    assert_eq!(broker.live_sessions(), ORPHANS);
    let durable = broker.journal_durable().expect("journal attached");
    assert!(durable > 0, "acked commits imply durable records");

    // Power cut: unsynced bytes vanish, the broker's memory is gone.
    storage.crash();
    drop(broker);

    let recovered = durable_broker(&storage, BrokerConfig::default());
    let production = recovered.production();
    for i in 0..COMMITS {
        assert_eq!(
            route_count(&production, &prefix_for(i)),
            1,
            "acked commit {i} must survive the crash exactly once"
        );
    }
    let (_, policies) = healthy_enterprise();
    let cp = converge(&production);
    assert!(check_policies(&production, &cp, &policies).all_hold());

    // The crashed process's sessions cannot be resumed: evicted, audited.
    assert_eq!(recovered.live_sessions(), 0);
    let snap = recovered.stats();
    assert_eq!(snap.commits_applied, COMMITS as u64);
    assert_eq!(snap.sessions_opened, (ORPHANS + COMMITS) as u64);
    assert_eq!(snap.sessions_finished, COMMITS as u64);
    assert_eq!(snap.recovered_sessions_evicted, ORPHANS as u64);
    assert_eq!(snap.sessions_evicted, ORPHANS as u64);
    assert!(snap.records_replayed > 0, "replay count must surface");
    assert_eq!(snap.journal_errors, 0);

    // The restored audit chain verifies (chain + enclave seal), and the
    // recovery evictions are themselves on the record.
    assert!(recovered.verify_audit());
    let evictions =
        recovered.audit_query(Some(heimdall::enforcer::audit::AuditKind::Session), None);
    assert_eq!(
        evictions
            .iter()
            .filter(|e| e.detail.contains("evicted during crash recovery"))
            .count(),
        ORPHANS
    );

    // Session IDs never recycle across the crash.
    let (fresh, _) = recovered.open_session("after-crash", ticket()).unwrap();
    assert!(
        fresh.0 > (ORPHANS + COMMITS) as u64,
        "recovered allocator must start past every journaled ID, got {fresh}"
    );
}

/// Tearing the journal at arbitrary byte offsets must always recover a
/// clean prefix: commits present in order with no gaps, never a garbage
/// network, and the audit chain always verifiable.
#[test]
fn torn_journal_recovers_a_consistent_prefix_at_any_cut() {
    const COMMITS: usize = 3;
    let storage = MemStorage::new();
    let broker = durable_broker(&storage, BrokerConfig::default());
    land_commits(&broker, 0..COMMITS);
    let segments = {
        let names = storage.list().unwrap();
        let mut segs: Vec<String> = names
            .into_iter()
            .filter(|n| n.starts_with("wal-"))
            .collect();
        segs.sort();
        segs
    };
    assert_eq!(segments.len(), 1, "small drill stays in one segment");
    drop(broker);
    let full = storage.contents(&segments[0]).unwrap();

    // Decimated sweep (the store crate's proptests cover every offset at
    // the record layer; here each probe replays a full broker).
    let cuts: Vec<usize> = (0..=full.len()).step_by(211).chain([full.len()]).collect();
    for cut in cuts {
        let fresh = MemStorage::new();
        fresh.append(&segments[0], &full[..cut]).unwrap();
        let recovered = durable_broker(&fresh, BrokerConfig::default());
        let production = recovered.production();
        let landed: Vec<bool> = (0..COMMITS)
            .map(|i| route_count(&production, &prefix_for(i)) == 1)
            .collect();
        // Prefix consistency: commit i present implies all j < i present.
        for i in 1..COMMITS {
            assert!(
                !landed[i] || landed[i - 1],
                "cut {cut}: commit {i} present without {}: {landed:?}",
                i - 1
            );
        }
        let applied = landed.iter().filter(|l| **l).count() as u64;
        assert_eq!(recovered.stats().commits_applied, applied, "cut {cut}");
        assert!(recovered.verify_audit(), "cut {cut}: audit must verify");
    }
}

/// A checkpoint bounds replay: recovery seeds from the snapshot, replays
/// only post-cut records, and compaction drops covered segments. State
/// accumulated before the checkpoint (counters, obs lifetime totals)
/// carries across the restart.
#[test]
fn checkpoint_bounds_replay_and_carries_totals_across_restart() {
    let storage = MemStorage::new();
    let config = BrokerConfig {
        // Tiny segments so the pre-checkpoint traffic rotates a few.
        wal_segment_bytes: 2048,
        ..BrokerConfig::default()
    };
    let broker = durable_broker(&storage, config.clone());
    land_commits(&broker, 0..2);
    broker.scrape_once();
    broker.scrape_once();
    let sample_total =
        |b: &Broker| -> u64 { b.obs_store().totals_all().iter().map(|(_, c, _)| *c).sum() };
    let totals_before = sample_total(&broker);
    assert!(totals_before > 0, "scrapes must land samples");

    let report = broker.checkpoint().expect("checkpoint succeeds");
    assert!(
        report.segments_removed >= 1,
        "2 KiB segments must compact: {report:?}"
    );
    assert!(broker.stats().segments_compacted >= 1);

    // Post-checkpoint traffic, then a crash.
    land_commits(&broker, 2..4);
    let replay_bound = broker.journal_durable().unwrap();
    storage.crash();
    drop(broker);

    let recovered = durable_broker(&storage, config);
    let production = recovered.production();
    for i in 0..4 {
        assert_eq!(route_count(&production, &prefix_for(i)), 1, "commit {i}");
    }
    let snap = recovered.stats();
    assert_eq!(snap.commits_applied, 4);
    assert_eq!(snap.sessions_opened, 4);
    assert!(
        snap.records_replayed < replay_bound,
        "snapshot must bound replay: {} replayed of {replay_bound} total",
        snap.records_replayed
    );
    // Obs lifetime totals restored from the snapshot: at least the
    // checkpointed history is present on the fresh store.
    let totals_after = sample_total(&recovered);
    assert!(
        totals_after >= totals_before,
        "lifetime sample count must carry across restart ({totals_after} < {totals_before})"
    );
    assert!(recovered.verify_audit());
}

/// A single flipped bit anywhere in the journal is detected: recovery
/// keeps the records before the corruption, discards the suffix, and
/// never replays garbage into production.
#[test]
fn bit_flip_in_journal_discards_suffix_never_garbage() {
    const COMMITS: usize = 3;
    let storage = MemStorage::new();
    let broker = durable_broker(&storage, BrokerConfig::default());
    land_commits(&broker, 0..COMMITS);
    let seg = {
        let mut names: Vec<String> = storage
            .list()
            .unwrap()
            .into_iter()
            .filter(|n| n.starts_with("wal-"))
            .collect();
        names.sort();
        names.remove(0)
    };
    drop(broker);
    let len = storage.contents(&seg).unwrap().len();
    storage.flip_bit(&seg, len / 2, 3);

    let recovered = durable_broker(&storage, BrokerConfig::default());
    let snap = recovered.stats();
    assert!(
        snap.torn_bytes_discarded > 0,
        "corruption must be detected and counted: {snap:?}"
    );
    assert!(snap.commits_applied <= COMMITS as u64);
    let production = recovered.production();
    let landed: Vec<bool> = (0..COMMITS)
        .map(|i| route_count(&production, &prefix_for(i)) == 1)
        .collect();
    for i in 1..COMMITS {
        assert!(!landed[i] || landed[i - 1], "prefix broken: {landed:?}");
    }
    assert!(recovered.verify_audit());
}

/// `Durability::Async` journals without blocking acknowledgements on a
/// sync: a crash may lose the unsynced tail, but recovery still comes
/// back clean — loss is bounded and never corrupts.
#[test]
fn async_mode_loses_unsynced_tail_cleanly() {
    let storage = MemStorage::new();
    let config = BrokerConfig {
        durability: Durability::Async,
        ..BrokerConfig::default()
    };
    let broker = durable_broker(&storage, config.clone());
    land_commits(&broker, 0..2);
    // Nothing forced a sync, so the crash wipes the whole journal.
    storage.crash();
    drop(broker);

    let recovered = durable_broker(&storage, config);
    let snap = recovered.stats();
    assert_eq!(snap.commits_applied, 0, "async tail is legitimately lost");
    assert_eq!(snap.records_replayed, 0);
    assert_eq!(
        route_count(&recovered.production(), &prefix_for(0)),
        0,
        "recovered production is the clean genesis, not a torn state"
    );
    assert!(recovered.verify_audit());
    // The recovered broker still works end to end.
    land_commits(&recovered, 5..6);
    assert_eq!(route_count(&recovered.production(), &prefix_for(5)), 1);
}
