//! Graceful-shutdown drill: a durable broker fleet served over a real
//! Unix-domain socket is shut down SIGTERM-style while clients are
//! mid-flight. The contract: every commit the *client* saw acknowledged
//! must survive into a recovered broker — zero acked-commit loss — and
//! the shutdown itself drains queued work, flushes the journal through
//! a sync barrier, and closes the listener (the socket file is gone).

use heimdall::net::{
    BoundAcceptor, BrokerFleet, ClientError, NetClient, NetConfig, NetServer, TenantKeys,
};
use heimdall::netmodel::gen::enterprise_network;
use heimdall::netmodel::topology::Network;
use heimdall::privilege::derive::{Task, TaskKind};
use heimdall::routing::converge;
use heimdall::service::proto::{Request, Response};
use heimdall::service::{Broker, BrokerConfig};
use heimdall::store::MemStorage;
use heimdall::verify::mine::{mine_policies, MinerInput};
use heimdall::verify::policy::PolicySet;
use std::path::PathBuf;
use std::sync::Arc;

fn healthy_enterprise() -> (Network, PolicySet) {
    let g = enterprise_network();
    let cp = converge(&g.net);
    let policies = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
    (g.net, policies)
}

fn ticket() -> Task {
    Task {
        kind: TaskKind::Routing,
        affected: vec!["h4".into(), "srv1".into()],
    }
}

fn durable_broker(storage: &MemStorage) -> Broker {
    let (production, policies) = healthy_enterprise();
    Broker::open_durable(
        production,
        policies,
        BrokerConfig::default(),
        Box::new(storage.clone()),
    )
    .expect("durable open")
}

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("heimdall-net-{tag}-{}.sock", std::process::id()))
}

/// One technician loop: keep running full sessions until the server
/// refuses (shutdown), counting only commits whose `Finished` ack we
/// actually received. Returns that count.
fn commit_until_shutdown(path: PathBuf, tenant: String, key: Vec<u8>) -> u64 {
    let mut acked = 0u64;
    let mut octet = 64u8;
    let mut client = match NetClient::connect_uds(&path, &tenant, &key) {
        Ok(c) => c,
        Err(_) => return 0, // server already gone
    };
    loop {
        octet = octet.wrapping_add(1).max(32);
        let open = client.call(Request::OpenSession {
            technician: String::new(),
            ticket: ticket(),
        });
        let session = match open {
            Ok(Response::SessionOpened { session, .. }) => session,
            Ok(_) | Err(_) => break,
        };
        let exec = client.call(Request::Exec {
            session,
            device: "fw1".into(),
            line: format!("ip route 10.{octet}.0.0 255.255.255.0 10.2.1.10"),
        });
        if !matches!(exec, Ok(Response::ExecOutput { .. })) {
            break;
        }
        match client.call(Request::Finish { session }) {
            Ok(Response::Finished { applied: true, .. }) => acked += 1,
            Ok(_) => break,
            Err(ClientError::ShuttingDown) | Err(_) => break,
        }
    }
    acked
}

#[test]
fn shutdown_loses_no_acked_commit() {
    let storage = MemStorage::new();
    let fleet = Arc::new(BrokerFleet::new(vec![Arc::new(durable_broker(&storage))]));
    let mut keys = TenantKeys::new();
    let tenants: Vec<String> = (0..3).map(|i| format!("tech{i:02}")).collect();
    for t in &tenants {
        keys.insert(t, t.as_bytes());
    }
    let path = sock_path("drain");
    let acceptor = BoundAcceptor::uds(&path).expect("bind uds");
    let server = NetServer::start(
        Arc::clone(&fleet),
        keys,
        NetConfig::default(),
        vec![acceptor],
    );

    // Technicians hammer the broker from their own threads while the
    // main thread pulls the plug mid-flight.
    let workers: Vec<_> = tenants
        .iter()
        .map(|t| {
            let path = path.clone();
            let tenant = t.clone();
            let key = t.as_bytes().to_vec();
            std::thread::spawn(move || commit_until_shutdown(path, tenant, key))
        })
        .collect();
    // Let them land some commits first.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    while fleet.shard(0).stats().commits_applied < 5 {
        assert!(
            std::time::Instant::now() < deadline,
            "workers never landed commits"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let report = server.shutdown();
    assert!(report.journals_synced, "sync barrier must pass");
    assert!(report.frames_handled > 0);
    assert!(!path.exists(), "UDS socket file must be unlinked");

    let acked: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(acked >= 5, "drill needs real acked traffic, got {acked}");

    // SIGTERM-style: the process is gone; memory with it. Recover a
    // fresh broker from the same storage.
    storage.crash();
    let recovered = durable_broker(&storage);
    let snap = recovered.stats();
    assert!(
        snap.commits_applied >= acked,
        "acked-commit loss: client saw {acked} acks, recovery holds {}",
        snap.commits_applied
    );
    assert!(recovered.verify_audit(), "recovered audit chain verifies");
}

#[test]
fn shutdown_report_counts_and_is_idempotent_on_clean_fleet() {
    let storage = MemStorage::new();
    let fleet = Arc::new(BrokerFleet::new(vec![Arc::new(durable_broker(&storage))]));
    let mut keys = TenantKeys::new();
    keys.insert("tech00", b"tech00");
    let path = sock_path("quiet");
    let acceptor = BoundAcceptor::uds(&path).expect("bind uds");
    let server = NetServer::start(
        Arc::clone(&fleet),
        keys,
        NetConfig::default(),
        vec![acceptor],
    );
    // One quick session so the report has something to count.
    let mut client = NetClient::connect_uds(&path, "tech00", b"tech00").expect("connect");
    let opened = client
        .call(Request::OpenSession {
            technician: String::new(),
            ticket: ticket(),
        })
        .unwrap();
    let session = match opened {
        Response::SessionOpened { session, .. } => session,
        other => panic!("{other:?}"),
    };
    let done = client.call(Request::Finish { session }).unwrap();
    assert!(matches!(done, Response::Finished { .. }), "{done:?}");
    let report = server.shutdown();
    assert!(report.journals_synced);
    assert_eq!(report.connections_served, 1);
    assert!(report.frames_handled >= 2, "open + finish");
    assert!(!path.exists());
    // A recovered broker sees the commit — sanity that the shutdown
    // barrier really pushed it to stable storage.
    storage.crash();
    let recovered = durable_broker(&storage);
    assert_eq!(recovered.stats().commits_applied, 1);
}
