//! Security integration tests: the least-privilege guarantees, attacked
//! from every layer.

use heimdall::msp::attacks::{careless_destruction, credential_exfiltration, malicious_acl_change};
use heimdall::msp::issues::{inject_issue, IssueKind};
use heimdall::nets::{enterprise, university};
use heimdall::privilege::derive::derive_privileges;
use heimdall::twin::session::{SessionError, TwinSession};
use heimdall::twin::slice::slice_for_task;

#[test]
fn no_secret_survives_into_any_twin() {
    // For every issue class on both networks: collect all production
    // secrets, render every twin console surface, assert zero overlap.
    for (net, meta, _) in [enterprise(), university()] {
        let mut secrets: Vec<String> = Vec::new();
        for (_, d) in net.devices() {
            secrets.extend(d.config.secrets.all_values().iter().map(|s| s.to_string()));
        }
        assert!(!secrets.is_empty());
        for kind in [
            IssueKind::Vlan,
            IssueKind::Ospf,
            IssueKind::Isp,
            IssueKind::AclDeny,
        ] {
            let mut broken = net.clone();
            let Some(issue) = inject_issue(&mut broken, &meta, kind) else {
                continue;
            };
            let task = heimdall::privilege::derive::Task {
                kind: issue.task_kind,
                affected: issue.affected.clone(),
            };
            let twin = slice_for_task(&broken, &task);
            let spec = derive_privileges(&broken, &task);
            let included = twin.included.clone();
            let mut session = TwinSession::open("auditor", twin, spec);
            for device in &included {
                for cmd in ["show running-config", "show access-lists", "show ip route"] {
                    if let Ok(out) = session.exec(device, cmd) {
                        for s in &secrets {
                            assert!(
                                !out.contains(s.as_str()),
                                "{}/{kind:?}: secret {s:?} leaked via {device} {cmd}",
                                meta.name
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn deny_by_default_holds_for_unknown_devices() {
    let (net, meta, _) = enterprise();
    let mut broken = net;
    let issue = inject_issue(&mut broken, &meta, IssueKind::AclDeny).expect("issue");
    let task = heimdall::privilege::derive::Task {
        kind: issue.task_kind,
        affected: issue.affected.clone(),
    };
    let twin = slice_for_task(&broken, &task);
    let spec = derive_privileges(&broken, &task);
    let mut session = TwinSession::open("mallory", twin, spec);
    // Every device outside the slice is invisible AND unusable.
    for off_slice in ["bdr1", "acc3", "h7", "h1"] {
        let e = session.exec(off_slice, "show running-config").unwrap_err();
        assert!(
            matches!(e, SessionError::PermissionDenied { .. }),
            "{off_slice}: {e}"
        );
        assert!(!session.view().shows(off_slice));
    }
}

#[test]
fn destructive_actions_denied_across_all_issue_kinds() {
    let (net, meta, _) = enterprise();
    for kind in [
        IssueKind::Vlan,
        IssueKind::Ospf,
        IssueKind::Isp,
        IssueKind::AclDeny,
    ] {
        let mut broken = net.clone();
        let issue = inject_issue(&mut broken, &meta, kind).expect("issue");
        let task = heimdall::privilege::derive::Task {
            kind: issue.task_kind,
            affected: issue.affected.clone(),
        };
        let twin = slice_for_task(&broken, &task);
        let spec = derive_privileges(&broken, &task);
        let mut session = TwinSession::open("careless", twin, spec);
        // The root-cause device is in scope — but destruction is not.
        for cmd in ["write erase", "reload", "enable secret stolen123"] {
            let r = session.exec(&issue.root_cause, cmd);
            assert!(
                matches!(r, Err(SessionError::PermissionDenied { .. })),
                "{kind:?}: {cmd} must be denied, got {r:?}"
            );
        }
    }
}

#[test]
fn attack_scenarios_hold_on_enterprise() {
    let (net, meta, _) = enterprise();

    let exfil = credential_exfiltration(&net, &meta);
    assert_eq!(exfil.secrets_rmm, exfil.secrets_total);
    assert_eq!(exfil.secrets_heimdall, 0);

    let evil = malicious_acl_change(&net, &meta);
    assert!(evil.rmm_new_violations > 0);
    assert!(evil.heimdall_command_allowed && !evil.heimdall_applied);

    let boom = careless_destruction(&net, &meta);
    assert!(boom.rmm_violations > 0);
    assert!(boom.heimdall_blocked);
    assert_eq!(boom.heimdall_violations, 0);
}

#[test]
fn exfiltration_also_contained_on_university() {
    let (net, meta, _) = university();
    let exfil = credential_exfiltration(&net, &meta);
    assert!(exfil.secrets_total >= 30);
    assert_eq!(exfil.secrets_rmm, exfil.secrets_total);
    assert_eq!(exfil.secrets_heimdall, 0);
}

#[test]
fn twin_changes_cannot_touch_production_directly() {
    // The twin is a value-isolated copy: however much the technician
    // destroys inside it, production is bitwise unchanged until the
    // enforcer applies an accepted change-set.
    let (net, meta, _) = enterprise();
    let mut broken = net.clone();
    let issue = inject_issue(&mut broken, &meta, IssueKind::AclDeny).expect("issue");
    let before = broken.clone();
    let task = heimdall::privilege::derive::Task {
        kind: issue.task_kind,
        affected: issue.affected.clone(),
    };
    let twin = slice_for_task(&broken, &task);
    let spec = derive_privileges(&broken, &task);
    let mut session = TwinSession::open("mallory", twin, spec);
    // Shred what the privileges allow inside the twin.
    let _ = session.exec("fw1", "no access-list 100 line 1");
    let _ = session.exec("fw1", "no access-list 100 line 1");
    let _ = session.exec("fw1", "no access-list 100 line 1");
    for (_, d) in broken.devices() {
        let b = before.device_by_name(&d.name).expect("same");
        assert_eq!(d.config, b.config, "{} mutated without enforcement", d.name);
    }
}
