//! End-to-end telemetry: many technicians work through the framed
//! protocol, and every applied commit's audit record carries a trace id
//! that resolves — over the same protocol — to a complete span tree
//! (open_session → exec → finish → verify/schedule/commit), while the
//! Prometheus exposition reports per-stage latency series with non-zero
//! counts.

use heimdall::netmodel::gen::enterprise_network;
use heimdall::netmodel::topology::Network;
use heimdall::privilege::derive::{Task, TaskKind};
use heimdall::routing::converge;
use heimdall::service::{
    read_frame, write_frame, Broker, BrokerConfig, Request, Response, SessionService,
};
use heimdall::telemetry::{
    AnomalyKind, RecorderConfig, Span, SpanId, SpanStatus, Stage, TelemetryConfig, TraceId,
};
use heimdall::verify::mine::{mine_policies, MinerInput};
use heimdall::verify::policy::PolicySet;
use heimdall_enforcer::audit::AuditKind;
use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;
use std::thread;

fn healthy_enterprise() -> (Network, PolicySet) {
    let g = enterprise_network();
    let cp = converge(&g.net);
    let policies = mine_policies(&g.net, &cp, &MinerInput::from_meta(&g.meta));
    (g.net, policies)
}

/// The spans of one trace, indexed for tree assertions.
struct Tree {
    spans: Vec<Span>,
}

impl Tree {
    fn ids(&self) -> HashSet<SpanId> {
        self.spans.iter().map(|s| s.id).collect()
    }

    fn of_stage(&self, stage: Stage) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.stage == stage).collect()
    }

    fn single(&self, stage: Stage) -> &Span {
        let found = self.of_stage(stage);
        assert_eq!(found.len(), 1, "expected exactly one {stage:?} span");
        found[0]
    }
}

#[test]
fn applied_commits_resolve_to_complete_span_trees() {
    const N: usize = 16;
    let (production, policies) = healthy_enterprise();
    let config = BrokerConfig {
        max_commit_retries: 64,
        telemetry: TelemetryConfig {
            recorder: RecorderConfig {
                // 16 racing commits on one device conflict by design; the
                // recorder must not flag the expected contention here.
                conflict_burst: 0,
                ..RecorderConfig::default()
            },
            ..TelemetryConfig::default()
        },
        ..BrokerConfig::default()
    };
    let service = Arc::new(SessionService::new(
        Broker::new(production, policies, config),
        N,
        N * 2,
    ));

    let handles: Vec<_> = (0..N)
        .map(|i| {
            let service = Arc::clone(&service);
            thread::spawn(move || {
                let mut conn = service.connect().unwrap();
                write_frame(
                    &mut conn,
                    &Request::OpenSession {
                        technician: format!("tech{i:02}"),
                        ticket: Task {
                            kind: TaskKind::Routing,
                            affected: vec!["h4".to_string(), "srv1".to_string()],
                        },
                    },
                )
                .unwrap();
                let Response::SessionOpened { session, .. } = read_frame(&mut conn).unwrap() else {
                    panic!("expected SessionOpened");
                };
                for line in [
                    "show running-config".to_string(),
                    format!("ip route 10.{}.0.0 255.255.255.0 10.2.1.10", 60 + i),
                ] {
                    write_frame(
                        &mut conn,
                        &Request::Exec {
                            session,
                            device: "fw1".to_string(),
                            line,
                        },
                    )
                    .unwrap();
                    let Response::ExecOutput { .. } = read_frame(&mut conn).unwrap() else {
                        panic!("expected ExecOutput");
                    };
                }
                write_frame(&mut conn, &Request::Finish { session }).unwrap();
                let Response::Finished { applied, .. } = read_frame(&mut conn).unwrap() else {
                    panic!("expected Finished");
                };
                assert!(applied, "composable route-add must land");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let mut conn = service.connect().unwrap();

    // Every applied commit's audit record carries a resolvable trace id.
    write_frame(
        &mut conn,
        &Request::AuditQuery {
            kind: Some(AuditKind::ChangeApplied),
            actor: None,
        },
    )
    .unwrap();
    let Response::Audit { entries } = read_frame(&mut conn).unwrap() else {
        panic!("expected Audit");
    };
    assert!(!entries.is_empty());
    let traces: BTreeSet<String> = entries
        .iter()
        .map(|e| {
            assert_eq!(e.trace.len(), 16, "applied commit missing trace: {e:?}");
            assert!(TraceId::parse(&e.trace).is_some(), "bad tag {:?}", e.trace);
            e.trace.clone()
        })
        .collect();
    assert_eq!(traces.len(), N, "one trace per technician's commit");

    for trace in &traces {
        write_frame(
            &mut conn,
            &Request::TraceQuery {
                trace: trace.clone(),
            },
        )
        .unwrap();
        let Response::Trace { spans, .. } = read_frame(&mut conn).unwrap() else {
            panic!("expected Trace");
        };
        let tree = Tree { spans };
        let ids = tree.ids();
        for s in &tree.spans {
            assert_eq!(s.trace.to_string(), *trace);
            if let Some(parent) = s.parent {
                assert!(ids.contains(&parent), "dangling parent in {trace}");
            }
        }
        // open_session roots the tree; exec and finish hang off it; the
        // enforcer stages hang off finish.
        let open = tree.single(Stage::OpenSession);
        assert_eq!(open.parent, None);
        let execs = tree.of_stage(Stage::Exec);
        assert_eq!(execs.len(), 2, "both mediated lines leave exec spans");
        for e in &execs {
            assert_eq!(e.parent, Some(open.id));
            assert_eq!(e.device.as_deref(), Some("fw1"));
            assert_eq!(e.status, SpanStatus::Ok);
        }
        assert_eq!(tree.single(Stage::DerivePrivilege).parent, Some(open.id));
        let finish = tree.single(Stage::Finish);
        assert_eq!(finish.parent, Some(open.id));
        assert_eq!(finish.status, SpanStatus::Ok);
        // Stale retries may add extra verify/commit rounds; at least one
        // of each must be there, all parented under finish.
        for stage in [Stage::Verify, Stage::Schedule, Stage::Commit] {
            let found = tree.of_stage(stage);
            assert!(!found.is_empty(), "{trace} missing {stage:?}");
            for s in found {
                assert_eq!(s.parent, Some(finish.id), "{stage:?} not under finish");
            }
        }
        // The last commit round succeeded.
        assert!(tree
            .of_stage(Stage::Commit)
            .iter()
            .any(|s| s.status == SpanStatus::Ok));
    }

    // The exposition carries per-stage p50/p99 summaries with real counts.
    write_frame(&mut conn, &Request::Telemetry).unwrap();
    let Response::Telemetry { text } = read_frame(&mut conn).unwrap() else {
        panic!("expected Telemetry");
    };
    for stage in ["open_session", "exec", "finish", "verify", "commit"] {
        for q in ["0.5", "0.99"] {
            let needle =
                format!("heimdall_stage_duration_ns{{quantile=\"{q}\",stage=\"{stage}\"}}");
            let alt = format!("heimdall_stage_duration_ns{{stage=\"{stage}\",quantile=\"{q}\"}}");
            assert!(
                text.contains(&needle) || text.contains(&alt),
                "missing {stage} {q} series in:\n{text}"
            );
        }
        let count_line = text
            .lines()
            .find(|l| {
                l.starts_with("heimdall_stage_duration_ns_count")
                    && l.contains(&format!("stage=\"{stage}\""))
                    && !l.contains("device=")
            })
            .unwrap_or_else(|| panic!("no count line for {stage}"));
        let n: u64 = count_line
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .unwrap();
        assert!(n > 0, "{stage} count must be non-zero: {count_line}");
    }
    // Per-device series exist for the shared firewall.
    assert!(text.contains("device=\"fw1\""));
    // Service counters ride along.
    assert!(text.contains(&format!("heimdall_commits_applied_total {N}")));

    assert!(service.broker().verify_audit());
    assert_eq!(service.broker().telemetry().recorder().dump_count(), 0);
}

#[test]
fn denial_burst_trips_the_flight_recorder_with_parseable_dump() {
    let (production, policies) = healthy_enterprise();
    let config = BrokerConfig {
        telemetry: TelemetryConfig {
            recorder: RecorderConfig {
                denial_burst: 4,
                ..RecorderConfig::default()
            },
            ..TelemetryConfig::default()
        },
        ..BrokerConfig::default()
    };
    let broker = Broker::new(production, policies, config);
    let (id, _) = broker
        .open_session(
            "prober",
            Task {
                kind: TaskKind::AccessControl,
                affected: vec!["h4".to_string(), "srv1".to_string()],
            },
        )
        .unwrap();
    for _ in 0..4 {
        let err = broker.exec(id, "fw1", "write erase");
        assert!(err.is_err(), "destructive command must be denied");
    }
    let recorder = broker.telemetry().recorder();
    let dumps = recorder.dumps();
    assert_eq!(dumps.len(), 1, "4 denials in-window must freeze one dump");
    assert_eq!(dumps[0].kind, AnomalyKind::DenialBurst);
    assert!(dumps[0].span_count > 0);
    // Every dump line is a parseable span; the denied execs are in there.
    let mut denied = 0;
    for line in dumps[0].spans_jsonl.lines() {
        let span: Span = serde_json::from_str(line).expect("dump line parses");
        if span.status == SpanStatus::Denied {
            denied += 1;
        }
    }
    assert!(denied >= 4, "dump must contain the denied spans");
    // The denials are also audit-joinable via the session's trace.
    assert!(broker.verify_audit());
}
