//! Adversarial fuzzing of the technician-facing surfaces: random command
//! streams against twin sessions, and random change-sets against the
//! enforcer. Nothing may panic, leak a secret, or touch production
//! without enforcement.

use heimdall::enforcer::verifier::verify_changes;
use heimdall::msp::issues::{inject_issue, IssueKind};
use heimdall::netmodel::diff::{AclDirection, ConfigChange, ConfigDiff};
use heimdall::nets::enterprise;
use heimdall::privilege::derive::derive_privileges;
use heimdall::privilege::model::PrivilegeMsp;
use heimdall::twin::session::TwinSession;
use heimdall::twin::slice::slice_for_task;
use proptest::prelude::*;

/// Random console line: valid-shaped commands with random parameters,
/// plus raw garbage.
fn arb_command() -> impl Strategy<Value = String> {
    let ip = (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255)
        .prop_map(|(a, b, c, d)| format!("{a}.{b}.{c}.{d}"));
    let iface = prop_oneof![
        Just("Gi0/0".to_string()),
        Just("Gi0/1".to_string()),
        Just("Gi0/9".to_string()),
        Just("Vlan30".to_string()),
        Just("eth0".to_string()),
        Just("Nope9".to_string()),
    ];
    let aclname = prop_oneof![Just("100"), Just("110"), Just("120"), Just("999")];
    prop_oneof![
        Just("show running-config".to_string()),
        Just("show ip route".to_string()),
        Just("show interfaces".to_string()),
        Just("show access-lists".to_string()),
        Just("show vlan".to_string()),
        ip.clone().prop_map(|i| format!("ping {i}")),
        ip.clone().prop_map(|i| format!("traceroute {i}")),
        iface
            .clone()
            .prop_map(|f| format!("interface {f} shutdown")),
        iface
            .clone()
            .prop_map(|f| format!("interface {f} no shutdown")),
        (iface.clone(), ip.clone())
            .prop_map(|(f, i)| format!("interface {f} ip address {i} 255.255.255.0")),
        (iface.clone(), 1u16..4095)
            .prop_map(|(f, v)| format!("interface {f} switchport access vlan {v}")),
        (aclname, 0usize..9).prop_map(|(a, l)| format!("no access-list {a} line {l}")),
        ip.clone()
            .prop_map(|i| format!("ip route 0.0.0.0 0.0.0.0 {i}")),
        Just("write erase".to_string()),
        Just("reload".to_string()),
        Just("enable secret hacked".to_string()),
        Just("sudo rm -rf /".to_string()),
        Just("()(((".to_string()),
        "[ -~]{0,40}".prop_map(|s| s),
    ]
}

fn arb_device() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("h4".to_string()),
        Just("fw1".to_string()),
        Just("core1".to_string()),
        Just("acc2".to_string()),
        Just("bdr1".to_string()),
        Just("h7".to_string()),
        Just("ghost".to_string()),
        "[a-z0-9]{1,8}".prop_map(|s| s),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_command_streams_never_break_the_twin(
        script in proptest::collection::vec((arb_device(), arb_command()), 1..40)
    ) {
        let (net, meta, _) = enterprise();
        let mut production = net;
        let issue = inject_issue(&mut production, &meta, IssueKind::AclDeny).expect("issue");
        let before = production.clone();

        // Every production secret, to grep the outputs for.
        let mut secrets: Vec<String> = Vec::new();
        for (_, d) in production.devices() {
            secrets.extend(d.config.secrets.all_values().iter().map(|s| s.to_string()));
        }

        let task = heimdall::privilege::derive::Task {
            kind: issue.task_kind,
            affected: issue.affected.clone(),
        };
        let twin = slice_for_task(&production, &task);
        let spec = derive_privileges(&production, &task);
        let mut session = TwinSession::open("fuzzer", twin, spec);

        let mut mediated = 0usize;
        for (device, cmd) in &script {
            if let Ok(out) = session.exec(device, cmd) {
                mediated += 1;
                for s in &secrets {
                    prop_assert!(!out.contains(s.as_str()), "leak via {device} {cmd}");
                }
            }
        }
        // The monitor saw at least every successfully parsed command.
        prop_assert!(session.monitor().events().len() >= mediated);

        // Production untouched regardless of what happened inside.
        let (_diff, _) = session.finish();
        for (_, d) in production.devices() {
            let b = before.device_by_name(&d.name).expect("same");
            prop_assert_eq!(&d.config, &b.config);
        }
    }

    #[test]
    fn random_command_streams_never_break_emergency_mode(
        script in proptest::collection::vec((arb_device(), arb_command()), 1..12)
    ) {
        use heimdall::emergency::EmergencySession;
        use heimdall::routing::converge;
        use heimdall::verify::checker::check_policies;

        let (net, meta, policies) = enterprise();
        let mut production = net;
        let issue = inject_issue(&mut production, &meta, IssueKind::Isp).expect("issue");
        let task = heimdall::privilege::derive::Task {
            kind: issue.task_kind,
            affected: issue.affected.clone(),
        };
        let spec = derive_privileges(&production, &task);
        let base_report = {
            let cp = converge(&production);
            check_policies(&production, &cp, &policies)
        };

        let mut s = EmergencySession::activate("fuzzer", production.clone(), spec, policies.clone(), "fuzz");
        for (device, cmd) in &script {
            let _ = s.exec(device, cmd);
        }
        prop_assert!(s.verify_audit_integrity());
        let (after, audit) = s.deactivate();
        prop_assert!(audit.verify_chain().is_ok());

        // Whatever the fuzzer did, the per-command veto guarantees that no
        // policy that held before is violated now.
        let cp = converge(&after);
        let rep = check_policies(&after, &cp, &policies);
        for ((id_b, before), (_, now)) in base_report.results.iter().zip(&rep.results) {
            if before.holds() {
                prop_assert!(now.holds(), "{id_b} newly violated by emergency fuzz");
            }
        }
    }

    #[test]
    fn random_change_sets_never_break_the_enforcer(
        shutdowns in proptest::collection::vec((arb_device(), 0usize..6, any::<bool>()), 0..8),
        drop_acl in any::<bool>(),
        bind_bogus in any::<bool>(),
    ) {
        let (net, _, policies) = enterprise();
        // Build a synthetic change-set, some of it valid, some nonsense.
        let mut changes = Vec::new();
        for (dev, ifn, enabled) in shutdowns {
            changes.push(ConfigChange::SetInterfaceEnabled {
                device: dev,
                iface: format!("Gi0/{ifn}"),
                enabled,
            });
        }
        if drop_acl {
            changes.push(ConfigChange::RemoveAcl {
                device: "fw1".to_string(),
                name: "100".to_string(),
            });
        }
        if bind_bogus {
            changes.push(ConfigChange::SetInterfaceAcl {
                device: "acc1".to_string(),
                iface: "Gi0/1".to_string(),
                direction: AclDirection::In,
                acl: Some("does-not-exist".to_string()),
            });
        }
        let diff = ConfigDiff { changes };

        // Under least privilege nothing random should slip through; under
        // allow-everything the enforcer must still never panic and must
        // reject anything that newly violates policy.
        let (rep_lp, patched_lp) = verify_changes(&net, &diff, &policies, &PrivilegeMsp::new());
        if !diff.is_empty() {
            prop_assert!(!rep_lp.accepted());
            prop_assert!(patched_lp.is_none());
        }
        let (rep_root, patched_root) =
            verify_changes(&net, &diff, &policies, &PrivilegeMsp::allow_everything());
        if let Some(p) = patched_root {
            // Accepted => applies cleanly and no newly violated policies.
            prop_assert!(rep_root.accepted());
            let cp = heimdall::routing::converge(&p);
            let after = heimdall::verify::checker::check_policies(&p, &cp, &policies);
            let cp0 = heimdall::routing::converge(&net);
            let before = heimdall::verify::checker::check_policies(&net, &cp0, &policies);
            let d = heimdall::verify::differential::diff_reports(&before, &after);
            prop_assert!(d.is_safe(), "accepted set violated: {:?}", d.newly_violated);
        }
    }
}
