//! End-to-end tests for the static privilege analyzer: the three seeded
//! defect classes surface through the broker's wire protocol with their
//! stable diagnostic codes, the escalation-reachability closure is a
//! sound over-approximation of `escalate::decide_escalation`, and the
//! intake gate refuses sessions above the configured severity.

use heimdall::analyze::{analyze_pair, codes, escalation_closure, Severity};
use heimdall::netmodel::gen::enterprise_network;
use heimdall::privilege::derive::{derive_privileges, Task, TaskKind};
use heimdall::privilege::escalate::{decide_escalation, EscalationDecision, EscalationRequest};
use heimdall::privilege::model::Action;
use heimdall::service::{
    read_frame, write_frame, Broker, BrokerConfig, ErrorKind, Request, Response,
};
use proptest::prelude::*;
use std::sync::OnceLock;

fn acl_ticket() -> Task {
    Task {
        kind: TaskKind::AccessControl,
        affected: vec!["h4".into(), "srv1".into()],
    }
}

fn broker() -> Broker {
    let g = enterprise_network();
    let cp = heimdall::routing::converge(&g.net);
    let policies = heimdall::verify::mine::mine_policies(
        &g.net,
        &cp,
        &heimdall::verify::mine::MinerInput::from_meta(&g.meta),
    );
    Broker::new(g.net, policies, BrokerConfig::default())
}

/// One request → one reply, through the real frame codec both ways.
fn roundtrip(b: &Broker, req: Request) -> Response {
    let mut buf = Vec::new();
    write_frame(&mut buf, &req).unwrap();
    let mut cursor = &buf[..];
    let decoded: Request = read_frame(&mut cursor).unwrap();
    let resp = b.handle(decoded);
    let mut buf = Vec::new();
    write_frame(&mut buf, &resp).unwrap();
    let mut cursor = &buf[..];
    read_frame(&mut cursor).unwrap()
}

#[test]
fn seeded_defect_classes_surface_over_the_wire() {
    let b = broker();
    // The seeded spec: a wildcard over-grant (reaching `erase`), which
    // also shadows the explicit view grant behind it.
    let resp = roundtrip(
        &b,
        Request::AnalyzeQuery {
            session: None,
            spec: Some("allow(*, fw1)\nallow(view, fw1)\n".into()),
            ticket: Some(acl_ticket()),
        },
    );
    let Response::Analysis { report } = resp else {
        panic!("expected Analysis, got {resp:?}");
    };
    // Defect class 1: shadowed predicate.
    assert!(report.has_code(codes::SHADOWED), "{report}");
    // Defect class 2: wildcard over-grant vs. the derived minimum, with a
    // concrete narrowing.
    assert!(report.has_code(codes::OVER_GRANT), "{report}");
    let fix = report.with_code(codes::OVER_GRANT)[0]
        .suggestion
        .clone()
        .unwrap();
    assert!(fix.contains("allow(acl, fw1)"), "{fix}");
    // Defect class 3: escalation chain reaching a destructive action.
    assert!(report.has_code(codes::ESCALATION_DESTRUCTIVE), "{report}");
    assert_eq!(report.max_severity(), Some(Severity::Error));
}

#[test]
fn live_sessions_are_analyzable_and_clean_of_errors() {
    let b = broker();
    let Response::SessionOpened { session, .. } = b.handle(Request::OpenSession {
        technician: "alice".into(),
        ticket: acl_ticket(),
    }) else {
        panic!("open failed");
    };
    let resp = roundtrip(
        &b,
        Request::AnalyzeQuery {
            session: Some(session),
            spec: None,
            ticket: None,
        },
    );
    let Response::Analysis { report } = resp else {
        panic!("expected Analysis, got {resp:?}");
    };
    assert!(
        report.max_severity() < Some(Severity::Error),
        "derived specs must be error-free: {report}"
    );
    // The broker counted the findings it produced.
    let Response::Stats { snapshot } = b.handle(Request::Stats) else {
        panic!("expected Stats");
    };
    assert!(snapshot.analysis_findings >= report.findings.len() as u64);
}

#[test]
fn intake_gate_refuses_sessions_over_the_wire() {
    let g = enterprise_network();
    let cp = heimdall::routing::converge(&g.net);
    let policies = heimdall::verify::mine::mine_policies(
        &g.net,
        &cp,
        &heimdall::verify::mine::MinerInput::from_meta(&g.meta),
    );
    let cfg = BrokerConfig {
        analysis_deny_at: Some(Severity::Info),
        ..BrokerConfig::default()
    };
    let b = Broker::new(g.net, policies, cfg);
    let resp = roundtrip(
        &b,
        Request::OpenSession {
            technician: "mallory".into(),
            ticket: acl_ticket(),
        },
    );
    let Response::Error { kind, message } = resp else {
        panic!("expected Error, got {resp:?}");
    };
    assert_eq!(kind, ErrorKind::PermissionDenied);
    assert!(message.contains("static analysis"), "{message}");
    let Response::Stats { snapshot } = b.handle(Request::Stats) else {
        panic!("expected Stats");
    };
    assert_eq!(snapshot.analysis_denials, 1);
    assert_eq!(snapshot.sessions_opened, 0);
}

#[test]
fn overlapping_tickets_are_flagged_before_they_collide() {
    let g = enterprise_network();
    let spec_a = derive_privileges(&g.net, &acl_ticket());
    let spec_b = spec_a.clone();
    let report = analyze_pair(&g.net, &spec_a, &spec_b);
    assert!(report.has_code(codes::CONCURRENT_OVERLAP), "{report}");
    // Disjoint tickets are clean.
    let c = derive_privileges(&g.net, &Task::connectivity("h1", "h2"));
    let d = derive_privileges(
        &g.net,
        &Task {
            kind: TaskKind::IspChange,
            affected: vec!["bdr1".into()],
        },
    );
    assert!(analyze_pair(&g.net, &c, &d).is_clean());
}

// --------------------------------------------------- closure soundness

fn kind_s() -> BoxedStrategy<TaskKind> {
    prop_oneof![
        Just(TaskKind::Connectivity),
        Just(TaskKind::Routing),
        Just(TaskKind::AccessControl),
        Just(TaskKind::Vlan),
        Just(TaskKind::IspChange),
        Just(TaskKind::Monitoring),
    ]
    .boxed()
}

fn action_s() -> BoxedStrategy<Action> {
    (0usize..Action::ALL.len())
        .prop_map(|i| Action::ALL[i])
        .boxed()
}

fn device_names() -> &'static Vec<String> {
    static NAMES: OnceLock<Vec<String>> = OnceLock::new();
    NAMES.get_or_init(|| {
        enterprise_network()
            .net
            .devices()
            .map(|(_, d)| d.name.clone())
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Soundness: any (action, device) the closure says is unreachable
    /// must never be auto-granted by the runtime escalation policy.
    #[test]
    fn closure_over_approximates_decide_escalation(
        kind in kind_s(),
        affected_idx in proptest::collection::vec(0usize..9, 0..3),
        action in action_s(),
        device_idx in 0usize..9,
    ) {
        let g = enterprise_network();
        let names = device_names();
        let affected: Vec<String> = affected_idx
            .iter()
            .map(|&i| names[i % names.len()].clone())
            .collect();
        let task = Task { kind, affected };
        let device = names[device_idx % names.len()].clone();
        let closure = escalation_closure(&g.net, &task);
        if !closure.reaches(action, &device) {
            let mut spec = derive_privileges(&g.net, &task);
            let decision = decide_escalation(
                &g.net,
                &task,
                &mut spec,
                &EscalationRequest {
                    technician: "t1".into(),
                    action,
                    device: device.clone(),
                    justification: "probe".into(),
                },
            );
            prop_assert_ne!(
                decision,
                EscalationDecision::AutoGranted,
                "closure says ({:?}, {}) is unreachable for {:?}, but decide auto-granted it",
                action, device, task.kind
            );
        }
    }
}
