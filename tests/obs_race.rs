//! Concurrent-ingestion stress for the time-series store: N writer
//! threads hammer one series while a downsampler folds tiers and a
//! reader queries mid-flight. The exact-once folding invariant must
//! hold at every instant and at the end: no sample is ever counted in
//! two tiers, and (with rings sized to avoid coarse eviction) the
//! three-tier sum decomposition equals the lifetime sum exactly.

use heimdall::obs::{Resolution, SeriesConfig, TimeSeriesStore};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const WRITERS: usize = 8;
const PER_WRITER: u64 = 8_192;
const SERIES: &str = "race.counter";

#[test]
fn writers_downsampler_and_reader_never_double_count() {
    // Tiny raw/mid rings force constant folding and eviction under the
    // writers' feet; coarse is sized so no folded mass is ever dropped
    // (8 * 8192 samples / 256 per coarse bucket = 256 buckets << 1024).
    let store = Arc::new(TimeSeriesStore::new(SeriesConfig {
        raw_capacity: 64,
        mid_capacity: 64,
        coarse_capacity: 1024,
    }));
    let stop = Arc::new(AtomicBool::new(false));

    // Integer-valued samples ≤ 97 keep every partial sum exactly
    // representable in f64, so equality assertions are legitimate.
    let value_of = |w: u64, i: u64| ((w * 31 + i) % 97) as f64;

    let writers: Vec<_> = (0..WRITERS as u64)
        .map(|w| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                for i in 0..PER_WRITER {
                    store.push(SERIES, w * PER_WRITER + i, value_of(w, i));
                }
            })
        })
        .collect();

    let downsampler = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut passes = 0u64;
            while !stop.load(Ordering::Relaxed) {
                store.downsample();
                passes += 1;
            }
            passes
        })
    };

    let reader = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Mid-flight consistency: the decomposition matches the
                // lifetime totals even while folds and pushes race.
                if let (Some((_, total)), Some(tiers)) =
                    (store.totals(SERIES), store.tier_sum(SERIES))
                {
                    assert_eq!(tiers, total, "tier decomposition drifted mid-flight");
                }
                let _ = store.query(SERIES, 0, u64::MAX, Resolution::Mid);
                let _ = store.tail(SERIES, 32);
                reads += 1;
            }
            reads
        })
    };

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let passes = downsampler.join().unwrap();
    let reads = reader.join().unwrap();
    assert!(passes > 0 && reads > 0, "auxiliary threads must have run");

    // Settle any group completed by the last pushes.
    store.downsample();

    let expected_count = (WRITERS as u64) * PER_WRITER;
    let expected_sum: f64 = (0..WRITERS as u64)
        .flat_map(|w| (0..PER_WRITER).map(move |i| value_of(w, i)))
        .sum();
    assert_eq!(store.totals(SERIES), Some((expected_count, expected_sum)));
    assert_eq!(
        store.tier_sum(SERIES),
        Some(expected_sum),
        "a sample was folded twice or lost"
    );

    // Aggregates are built from whole groups only — never a torn fold.
    let mid = store.query(SERIES, 0, u64::MAX, Resolution::Mid).unwrap();
    assert!(mid.iter().all(|b| b.count == 16), "torn mid bucket");
    let coarse = store
        .query(SERIES, 0, u64::MAX, Resolution::Coarse)
        .unwrap();
    assert!(coarse.iter().all(|b| b.count == 256), "torn coarse bucket");
    // Everything folded to coarse is accounted exactly once there.
    let coarse_count: u64 = coarse.iter().map(|b| b.count).sum();
    assert!(coarse_count <= expected_count);
    assert_eq!(coarse_count % 256, 0);
}

#[test]
fn concurrent_distinct_series_stay_isolated() {
    let store = Arc::new(TimeSeriesStore::default());
    let handles: Vec<_> = (0..4u64)
        .map(|w| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                let name = format!("writer{w}.events");
                for i in 0..2_000u64 {
                    store.push(&name, i, 1.0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for w in 0..4u64 {
        let name = format!("writer{w}.events");
        assert_eq!(store.totals(&name), Some((2_000, 2_000.0)));
        assert_eq!(store.tier_sum(&name), Some(2_000.0));
    }
    assert_eq!(store.series_names().len(), 4);
}
